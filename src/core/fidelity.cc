#include "core/fidelity.h"

#include <cassert>
#include <string>

#include "core/coherency.h"

namespace d3t::core {

namespace {

/// Measured violations use the fidelity slack so that boundary-exact
/// deviations (which the forwarding predicates deliberately hold back)
/// do not register as loss. See kFidelitySlack in core/coherency.h.
bool MeasuredViolation(double source_value, double repo_value, Coherency c) {
  return std::abs(source_value - repo_value) > c + kFidelitySlack;
}

}  // namespace

FidelityTracker::FidelityTracker(Coherency c, double initial_value)
    : c_(c), source_value_(initial_value), repo_value_(initial_value) {}

FidelityTracker::FidelityTracker(
    Coherency c, const std::vector<trace::Tick>* source_timeline)
    : c_(c), source_timeline_(source_timeline) {
  assert(source_timeline != nullptr && !source_timeline->empty());
  source_value_ = repo_value_ = source_timeline->front().value;
}

FidelityTracker::FidelityTracker(
    Coherency c, const std::vector<trace::Tick>* source_timeline,
    sim::SimTime start)
    : c_(c), start_(start), last_event_(start),
      source_timeline_(source_timeline) {
  assert(source_timeline != nullptr && !source_timeline->empty());
  // A join-time fetch: both processes start at the source's value as of
  // `start`; the cursor resumes at the first strictly later tick.
  const std::vector<trace::Tick>& ticks = *source_timeline;
  source_value_ = ticks.front().value;
  source_cursor_ = 1;
  while (source_cursor_ < ticks.size() &&
         ticks[source_cursor_].time <= start) {
    source_value_ = ticks[source_cursor_++].value;
  }
  repo_value_ = source_value_;
}

void FidelityTracker::SyncTo(sim::SimTime t) {
  if (finalized_) return;
  IntegrateSourceTo(t);
  if (t > last_event_) Advance(t);
}

void FidelityTracker::set_coherency(Coherency c) {
  c_ = c;
  if (!finalized_) {
    violated_ = MeasuredViolation(source_value_, repo_value_, c_);
  }
}

void FidelityTracker::Advance(sim::SimTime t) {
  if (finalized_) return;
  assert(t >= last_event_);
  if (violated_) out_of_sync_time_ += t - last_event_;
  last_event_ = t;
}

void FidelityTracker::IntegrateSourceTo(sim::SimTime t) {
  if (source_timeline_ == nullptr) return;
  const std::vector<trace::Tick>& ticks = *source_timeline_;
  while (source_cursor_ < ticks.size() && ticks[source_cursor_].time <= t) {
    const trace::Tick& tick = ticks[source_cursor_++];
    // A poll repeating the previous value is not a source update
    // (already absent from a compacted timeline).
    if (tick.value == source_value_) continue;
    Advance(tick.time);
    source_value_ = tick.value;
    violated_ = MeasuredViolation(source_value_, repo_value_, c_);
  }
}

void FidelityTracker::OnSourceValue(sim::SimTime t, double value) {
  assert(source_timeline_ == nullptr &&
         "lazy trackers integrate the source from their bound trace");
  if (finalized_) return;
  Advance(t);
  source_value_ = value;
  violated_ = MeasuredViolation(source_value_, repo_value_, c_);
}

void FidelityTracker::OnRepositoryValue(sim::SimTime t, double value) {
  if (finalized_) return;
  IntegrateSourceTo(t);
  Advance(t);
  repo_value_ = value;
  violated_ = MeasuredViolation(source_value_, repo_value_, c_);
}

void FidelityTracker::Finalize(sim::SimTime end) {
  if (finalized_) return;
  IntegrateSourceTo(end);
  if (end > last_event_) Advance(end);
  window_ = end - start_;
  finalized_ = true;
}

ChangeTimelines BuildChangeTimelines(
    const std::vector<trace::Trace>& traces) {
  ChangeTimelines timelines(traces.size());
  for (size_t i = 0; i < traces.size(); ++i) {
    const std::vector<trace::Tick>& ticks = traces[i].ticks();
    assert(!ticks.empty());
    std::vector<trace::Tick>& timeline = timelines[i];
    timeline.push_back(ticks.front());
    for (size_t k = 1; k < ticks.size(); ++k) {
      if (ticks[k].value != timeline.back().value) {
        timeline.push_back(ticks[k]);
      }
    }
  }
  return timelines;
}

Status ValidateChangeTimelines(const ChangeTimelines& timelines,
                               const std::vector<trace::Trace>& traces) {
  if (timelines.size() != traces.size()) {
    return Status::InvalidArgument(
        "change-timeline cache does not cover every trace");
  }
  for (size_t i = 0; i < traces.size(); ++i) {
    const std::vector<trace::Tick>& timeline = timelines[i];
    const std::vector<trace::Tick>& ticks = traces[i].ticks();
    const bool consistent =
        !timeline.empty() && !ticks.empty() &&
        timeline.size() <= ticks.size() &&
        timeline.front().time == ticks.front().time &&
        timeline.front().value == ticks.front().value &&
        timeline.back().time <= ticks.back().time;
    if (!consistent) {
      return Status::InvalidArgument(
          "change-timeline cache does not match trace " + std::to_string(i));
    }
  }
  return Status::Ok();
}

Result<const ChangeTimelines*> ResolveChangeTimelines(
    const ChangeTimelines* cache, const std::vector<trace::Trace>& traces,
    ChangeTimelines& owned) {
  if (cache == nullptr) {
    owned = BuildChangeTimelines(traces);
    return static_cast<const ChangeTimelines*>(&owned);
  }
  D3T_RETURN_IF_ERROR(ValidateChangeTimelines(*cache, traces));
  return cache;
}

double FidelityTracker::LossPercent() const {
  assert(finalized_);
  if (window_ <= 0) return 0.0;
  return 100.0 * static_cast<double>(out_of_sync_time_) /
         static_cast<double>(window_);
}

}  // namespace d3t::core
