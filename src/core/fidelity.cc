#include "core/fidelity.h"

#include <cassert>

#include "core/coherency.h"

namespace d3t::core {

namespace {

/// Measured violations use the fidelity slack so that boundary-exact
/// deviations (which the forwarding predicates deliberately hold back)
/// do not register as loss. See kFidelitySlack in core/coherency.h.
bool MeasuredViolation(double source_value, double repo_value, Coherency c) {
  return std::abs(source_value - repo_value) > c + kFidelitySlack;
}

}  // namespace

FidelityTracker::FidelityTracker(Coherency c, double initial_value)
    : c_(c), source_value_(initial_value), repo_value_(initial_value) {}

void FidelityTracker::Advance(sim::SimTime t) {
  if (finalized_) return;
  assert(t >= last_event_);
  if (violated_) out_of_sync_time_ += t - last_event_;
  last_event_ = t;
}

void FidelityTracker::OnSourceValue(sim::SimTime t, double value) {
  if (finalized_) return;
  Advance(t);
  source_value_ = value;
  violated_ = MeasuredViolation(source_value_, repo_value_, c_);
}

void FidelityTracker::OnRepositoryValue(sim::SimTime t, double value) {
  if (finalized_) return;
  Advance(t);
  repo_value_ = value;
  violated_ = MeasuredViolation(source_value_, repo_value_, c_);
}

void FidelityTracker::Finalize(sim::SimTime end) {
  if (finalized_) return;
  if (end > last_event_) Advance(end);
  window_ = end;
  finalized_ = true;
}

double FidelityTracker::LossPercent() const {
  assert(finalized_);
  if (window_ <= 0) return 0.0;
  return 100.0 * static_cast<double>(out_of_sync_time_) /
         static_cast<double>(window_);
}

}  // namespace d3t::core
