#ifndef D3T_CORE_COHERENCY_H_
#define D3T_CORE_COHERENCY_H_

#include <cmath>

#include "core/types.h"

namespace d3t::core {

/// The update-filtering predicates of Section 5 of the paper. `value` is
/// the update just received by the parent, `last_sent` the value the
/// parent last pushed to the dependent.

/// Deviations must exceed a tolerance by more than this slack to count
/// as a coherency violation in the forwarding predicates. Prices are
/// quantized to cents and tolerances to $0.001, so exact boundary hits
/// (|1.7 - 1.4| vs c = 0.3) are common and must not be decided by
/// floating-point rounding noise.
inline constexpr double kForwardingSlack = 1e-9;

/// Slack used when *measuring* fidelity. Strictly larger than twice the
/// forwarding slack so that the forwarding rules' guarantees (deviation
/// bounded by c plus accumulated forwarding slack along a path) never
/// register as measured violations. Far below the $0.001 tolerance
/// quantum, so no real violation is masked.
inline constexpr double kFidelitySlack = 1e-6;

/// Eq. (1): a parent may serve a dependent only when its own coherency
/// requirement is at least as stringent.
inline bool SatisfiesEq1(Coherency parent_c, Coherency child_c) {
  return parent_c <= child_c;
}

/// Eq. (3): the dependent's coherency is violated by the new value —
/// necessary condition for forwarding.
inline bool ViolatesEq3(double value, double last_sent, Coherency child_c) {
  return std::abs(value - last_sent) > child_c + kForwardingSlack;
}

/// Eq. (7): the missed-updates guard. Even when Eq. (3) does not fire,
/// the *next* source update could violate the dependent without being
/// delivered to the parent (Fig. 4). That happens when
///   child_c - |value - last_sent| < parent_c,
/// i.e. the dependent's remaining slack is smaller than the parent's own
/// tolerance, so a violation of the dependent can hide inside the
/// parent's dead zone.
inline bool MissedUpdateGuard(double value, double last_sent,
                              Coherency child_c, Coherency parent_c) {
  return child_c - std::abs(value - last_sent) <
         parent_c - kForwardingSlack;
}

/// The distributed dissemination rule: forward iff Eq. (3) or Eq. (7)
/// holds — equivalently iff |value - last_sent| > child_c - parent_c.
/// With parent_c == 0 (the source) this reduces to Eq. (3).
inline bool ShouldForwardDistributed(double value, double last_sent,
                                     Coherency child_c, Coherency parent_c) {
  return ViolatesEq3(value, last_sent, child_c) ||
         MissedUpdateGuard(value, last_sent, child_c, parent_c);
}

}  // namespace d3t::core

#endif  // D3T_CORE_COHERENCY_H_
