#include "core/lela.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace d3t::core {

namespace {

/// Sentinel serve level of a (member, item) the member does not hold.
/// NaN so that `serve <= c` is false for every tolerance — including an
/// infinite one — exactly like the Holds() check it replaces.
const double kNotServed = std::numeric_limits<double>::quiet_NaN();

/// Working state of one construction.
///
/// Join-time candidate evaluation is flattened for large memberships:
/// the joining repository's needs are copied out of the InterestSet map
/// once per join, CanServe reads a dense (member x item) serve-level
/// array instead of chasing the overlay's serving records, and each
/// level keeps a bucket of members that still offer spare cooperation
/// capacity (lazily compacted) so a join never rescans saturated
/// levels member by member.
class Builder {
 public:
  Builder(const net::OverlayDelayModel& delays, size_t member_count,
          size_t item_count, const LelaOptions& options, Rng& rng)
      : delays_(delays),
        options_(options),
        rng_(rng),
        overlay_(member_count, item_count),
        serve_c_(member_count * item_count, kNotServed) {}

  /// One-time validation of options and the delay model; also roots the
  /// source's holdings. Must be called (successfully) before any join.
  Status Initialize();

  /// Validates and places one repository.
  Status JoinMember(OverlayIndex q, const InterestSet& needs);

  const Overlay& overlay() const { return overlay_; }
  const LelaBuildInfo& info() const { return info_; }
  Overlay TakeOverlay() { return std::move(overlay_); }
  LelaBuildInfo FinalInfo() {
    info_.levels = levels_.size();
    return info_;
  }

 private:
  /// Flat (item, tolerance) view of the joining member's needs.
  using FlatNeeds = std::vector<std::pair<ItemId, Coherency>>;

  /// Cooperation capacity offered by `m`.
  size_t DegreeOf(OverlayIndex m) const {
    return options_.per_member_degree.empty()
               ? options_.coop_degree
               : options_.per_member_degree[m];
  }

  /// True when `parent` can already serve `item` at tolerance `c`: one
  /// dense array read (kNotServed compares false against any c).
  bool CanServe(OverlayIndex parent, ItemId item, Coherency c) const {
    return serve_c_[static_cast<size_t>(parent) * overlay_.item_count() +
                    item] <= c;
  }

  /// Mirrors `m`'s serve level for `item` into the dense array after an
  /// overlay mutation that may have changed it.
  void SyncServe(OverlayIndex m, ItemId item) {
    serve_c_[static_cast<size_t>(m) * overlay_.item_count() + item] =
        overlay_.Holds(m, item) ? overlay_.Serving(m, item).c_serve
                                : kNotServed;
  }

  double Preference(OverlayIndex candidate, OverlayIndex q,
                    const FlatNeeds& needed) const;

  Status InsertRepository(OverlayIndex q, const InterestSet& needed);

  /// Ensures `node` can serve `item` at tolerance `c`, recursively
  /// augmenting ancestors along existing connections (paper §4's
  /// cascading effect). Returns the number of fresh per-item edges made.
  size_t AugmentServe(OverlayIndex node, ItemId item, Coherency c,
                      size_t depth);

  const net::OverlayDelayModel& delays_;
  const LelaOptions options_;
  Rng& rng_;
  Overlay overlay_;
  std::vector<std::vector<OverlayIndex>> levels_{{kSourceOverlayIndex}};
  /// Per level: the members still eligible as connection parents (spare
  /// capacity, reachable from the source). Members are appended on
  /// placement and lazily compacted out once their capacity fills —
  /// capacity never comes back, so eviction is permanent and a join
  /// skips saturated levels in O(1) instead of rescanning them.
  std::vector<std::vector<OverlayIndex>> open_{{kSourceOverlayIndex}};
  /// Dense (member x item) serve levels (c_serve, or kNotServed when the
  /// member does not hold the item) mirroring the overlay's serving
  /// records; lets join-time scoring read one flat double per check.
  std::vector<Coherency> serve_c_;
  LelaBuildInfo info_;
};

double Builder::Preference(OverlayIndex candidate, OverlayIndex q,
                           const FlatNeeds& needed) const {
  const double comm = static_cast<double>(delays_.Delay(candidate, q));
  const double dependents = static_cast<double>(
      overlay_.ConnectionChildren(candidate).size());
  if (options_.preference == PreferenceFunction::kP2) {
    return comm * (1.0 + dependents);
  }
  const Coherency* serve =
      &serve_c_[static_cast<size_t>(candidate) * overlay_.item_count()];
  size_t servable = 0;
  for (const auto& [item, c] : needed) {
    if (serve[item] <= c) ++servable;
  }
  return comm * (1.0 + dependents) /
         (1.0 + static_cast<double>(servable));
}

size_t Builder::AugmentServe(OverlayIndex node, ItemId item, Coherency c,
                             size_t depth) {
  if (node == kSourceOverlayIndex) return 0;  // source holds all at c=0
  // Guard against pathological recursion (a correct overlay's parent
  // chains are shorter than the member count).
  assert(depth <= overlay_.member_count());
  (void)depth;
  if (overlay_.Holds(node, item)) {
    const ItemServing& s = overlay_.Serving(node, item);
    if (s.c_serve <= c) return 0;  // already stringent enough
    const OverlayIndex parent = s.parent;
    size_t fresh = AugmentServe(parent, item, c, depth + 1);
    overlay_.SetServing(node, item, c, parent);
    overlay_.TightenItemEdge(parent, node, item, c);
    SyncServe(node, item);
    return fresh;
  }
  // The node does not hold the item: recruit a supplier among its
  // existing connection parents — prefer one already holding the item,
  // otherwise pick one at random (paper §4).
  const auto& parents = overlay_.ConnectionParents(node);
  assert(!parents.empty() && "placed repositories always have a parent");
  OverlayIndex supplier = kInvalidOverlayIndex;
  for (OverlayIndex p : parents) {
    if (overlay_.Holds(p, item)) {
      supplier = p;
      break;
    }
  }
  if (supplier == kInvalidOverlayIndex) {
    supplier = parents[rng_.NextBounded(parents.size())];
  }
  size_t fresh = AugmentServe(supplier, item, c, depth + 1);
  overlay_.AddItemEdge(supplier, node, item, c);
  SyncServe(node, item);
  return fresh + 1;
}

Status Builder::InsertRepository(OverlayIndex q, const InterestSet& needed) {
  if (needed.empty()) {
    // A repository with no data needs joins as a leaf of level 1 with no
    // connections; it has no path to the source, so it is never added to
    // the open (parent-eligible) bucket of its level.
    overlay_.set_level(q, 1);
    if (levels_.size() < 2) {
      levels_.emplace_back();
      open_.emplace_back();
    }
    levels_[1].push_back(q);
    info_.levels = levels_.size();
    return Status::Ok();
  }
  // One flat copy of the needs per join: every per-candidate scan below
  // walks this contiguous array instead of re-iterating the InterestSet
  // map per candidate.
  const FlatNeeds needs(needed.begin(), needed.end());
  for (size_t level = 0; level < levels_.size(); ++level) {
    // Candidates: the level's open bucket, compacted in place to evict
    // members whose capacity has filled since the last visit (capacity
    // never comes back, so eviction is permanent). A fully saturated
    // level costs O(1) from then on.
    std::vector<OverlayIndex>& candidates = open_[level];
    size_t keep = 0;
    for (OverlayIndex m : candidates) {
      if (overlay_.ConnectionChildren(m).size() >= DegreeOf(m)) continue;
      candidates[keep++] = m;
    }
    candidates.resize(keep);
    if (candidates.empty()) continue;  // pass to the next load controller

    // Preference factors; keep those within the P% window of the best.
    std::vector<std::pair<double, OverlayIndex>> scored;
    scored.reserve(candidates.size());
    for (OverlayIndex m : candidates) {
      scored.emplace_back(Preference(m, q, needs), m);
    }
    std::sort(scored.begin(), scored.end());
    const double best = scored.front().first;
    const double cutoff = best * (1.0 + options_.p_window);
    std::vector<OverlayIndex> window;
    for (const auto& [pref, m] : scored) {
      if (pref <= cutoff || window.empty()) window.push_back(m);
    }

    // Assign each needed item to the most preferred parent that can
    // already serve it; the rest go to the most preferred parent overall
    // through cascading augmentation.
    std::vector<std::pair<OverlayIndex, std::pair<ItemId, Coherency>>>
        assignments;
    std::vector<std::pair<ItemId, Coherency>> leftovers;
    for (const auto& [item, c] : needs) {
      OverlayIndex server = kInvalidOverlayIndex;
      for (OverlayIndex m : window) {
        if (CanServe(m, item, c)) {
          server = m;
          break;
        }
      }
      if (server == kInvalidOverlayIndex) {
        leftovers.emplace_back(item, c);
      } else {
        assignments.emplace_back(server, std::make_pair(item, c));
      }
    }

    for (const auto& [item, c] : needs) {
      overlay_.SetOwnInterest(q, item, c);
      SyncServe(q, item);
    }
    for (const auto& [server, item_c] : assignments) {
      overlay_.AddItemEdge(server, q, item_c.first, item_c.second);
      SyncServe(q, item_c.first);
      ++info_.demand_edges;
    }
    if (!leftovers.empty()) {
      const OverlayIndex favorite = window.front();
      // The favorite may need items it never wanted; its own ancestors
      // are augmented transitively up to the source.
      for (const auto& [item, c] : leftovers) {
        // AugmentServe() requires an existing connection parent; attach
        // q to the favorite first if no edge exists yet so the favorite
        // counts q exactly once against its capacity.
        info_.augmented_edges += AugmentServe(favorite, item, c, 0);
        overlay_.AddItemEdge(favorite, q, item, c);
        SyncServe(q, item);
        ++info_.demand_edges;
      }
    }

    overlay_.set_level(q, static_cast<uint32_t>(level + 1));
    if (levels_.size() < level + 2) {
      levels_.emplace_back();
      open_.emplace_back();
    }
    levels_[level + 1].push_back(q);
    // q joined with needs, so it has a connection parent and is
    // source-reachable: parent-eligible as soon as it offers capacity.
    if (DegreeOf(q) > 0) open_[level + 1].push_back(q);
    if (overlay_.ConnectionParents(q).size() > 1) {
      ++info_.multi_parent_repositories;
    }
    info_.levels = levels_.size();
    return Status::Ok();
  }
  return Status::CapacityExhausted(
      "no level had spare cooperation capacity");
}

Status Builder::Initialize() {
  if (options_.coop_degree == 0 && options_.per_member_degree.empty()) {
    return Status::InvalidArgument("cooperation degree must be >= 1");
  }
  if (!options_.per_member_degree.empty()) {
    if (options_.per_member_degree.size() != overlay_.member_count()) {
      return Status::InvalidArgument(
          "per_member_degree must cover source + all repositories");
    }
    if (options_.per_member_degree[kSourceOverlayIndex] == 0) {
      return Status::InvalidArgument(
          "the source must offer at least one dependent slot");
    }
  }
  if (options_.p_window < 0.0) {
    return Status::InvalidArgument("p_window must be >= 0");
  }
  if (delays_.member_count() != overlay_.member_count()) {
    return Status::InvalidArgument(
        "delay model must cover source + all repositories");
  }
  // The source holds every item at tolerance 0.
  for (ItemId item = 0; item < overlay_.item_count(); ++item) {
    overlay_.SetServing(kSourceOverlayIndex, item, 0.0,
                        kInvalidOverlayIndex);
    SyncServe(kSourceOverlayIndex, item);
  }
  return Status::Ok();
}

Status Builder::JoinMember(OverlayIndex q, const InterestSet& needs) {
  if (q == kSourceOverlayIndex || q >= overlay_.member_count()) {
    return Status::OutOfRange("member index out of range");
  }
  for (const auto& [item, c] : needs) {
    if (item >= overlay_.item_count()) {
      return Status::OutOfRange("interest references unknown item");
    }
    if (c <= 0.0) {
      return Status::InvalidArgument(
          "coherency tolerances must be positive");
    }
  }
  return InsertRepository(q, needs);
}

}  // namespace

Result<LelaResult> BuildOverlay(const net::OverlayDelayModel& delays,
                                const std::vector<InterestSet>& interests,
                                size_t item_count,
                                const LelaOptions& options, Rng& rng) {
  Builder builder(delays, interests.size() + 1, item_count, options, rng);
  D3T_RETURN_IF_ERROR(builder.Initialize());

  // Insertion order.
  std::vector<OverlayIndex> order(interests.size());
  std::iota(order.begin(), order.end(), 1);
  switch (options.insertion_order) {
    case InsertionOrder::kStringentFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&interests](OverlayIndex a, OverlayIndex b) {
                         return MeanCoherency(interests[a - 1]) <
                                MeanCoherency(interests[b - 1]);
                       });
      break;
    case InsertionOrder::kRandom:
      rng.Shuffle(order);
      break;
    case InsertionOrder::kIndexOrder:
      break;
  }

  for (OverlayIndex q : order) {
    D3T_RETURN_IF_ERROR(builder.JoinMember(q, interests[q - 1]));
  }
  LelaBuildInfo info = builder.FinalInfo();
  return LelaResult{builder.TakeOverlay(), info};
}

// ---------------------------------------------------------------------------
// IncrementalLela

struct IncrementalLela::Impl {
  Impl(const net::OverlayDelayModel& delays, size_t item_count,
       const LelaOptions& options, Rng& rng)
      : builder(delays, delays.member_count(), item_count, options, rng),
        joined(delays.member_count(), false) {
    init_status = builder.Initialize();
  }

  Builder builder;
  Status init_status;
  std::vector<bool> joined;
};

IncrementalLela::IncrementalLela(const net::OverlayDelayModel& delays,
                                 size_t item_count,
                                 const LelaOptions& options, Rng& rng)
    : impl_(std::make_unique<Impl>(delays, item_count, options, rng)) {}

IncrementalLela::~IncrementalLela() = default;

Status IncrementalLela::Join(OverlayIndex member, const InterestSet& needs) {
  if (!impl_->init_status.ok()) return impl_->init_status;
  if (member >= impl_->joined.size()) {
    return Status::OutOfRange("member index out of range");
  }
  if (member != kSourceOverlayIndex && impl_->joined[member]) {
    return Status::AlreadyExists("member already joined");
  }
  D3T_RETURN_IF_ERROR(impl_->builder.JoinMember(member, needs));
  impl_->joined[member] = true;
  return Status::Ok();
}

bool IncrementalLela::HasJoined(OverlayIndex member) const {
  return member < impl_->joined.size() && impl_->joined[member];
}

const Overlay& IncrementalLela::overlay() const {
  return impl_->builder.overlay();
}

const LelaBuildInfo& IncrementalLela::info() const {
  return impl_->builder.info();
}

}  // namespace d3t::core
