#include "core/lela.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace d3t::core {

namespace {

/// Working state of one construction.
class Builder {
 public:
  Builder(const net::OverlayDelayModel& delays, size_t member_count,
          size_t item_count, const LelaOptions& options, Rng& rng)
      : delays_(delays),
        options_(options),
        rng_(rng),
        overlay_(member_count, item_count) {}

  /// One-time validation of options and the delay model; also roots the
  /// source's holdings. Must be called (successfully) before any join.
  Status Initialize();

  /// Validates and places one repository.
  Status JoinMember(OverlayIndex q, const InterestSet& needs);

  const Overlay& overlay() const { return overlay_; }
  const LelaBuildInfo& info() const { return info_; }
  Overlay TakeOverlay() { return std::move(overlay_); }
  LelaBuildInfo FinalInfo() {
    info_.levels = levels_.size();
    return info_;
  }

 private:
  /// Cooperation capacity offered by `m`.
  size_t DegreeOf(OverlayIndex m) const {
    return options_.per_member_degree.empty()
               ? options_.coop_degree
               : options_.per_member_degree[m];
  }

  /// True when `parent` can already serve `item` at tolerance `c`.
  bool CanServe(OverlayIndex parent, ItemId item, Coherency c) const {
    if (!overlay_.Holds(parent, item)) return false;
    return overlay_.Serving(parent, item).c_serve <= c;
  }

  double Preference(OverlayIndex candidate, OverlayIndex q,
                    const InterestSet& needed) const;

  Status InsertRepository(OverlayIndex q, const InterestSet& needed);

  /// Ensures `node` can serve `item` at tolerance `c`, recursively
  /// augmenting ancestors along existing connections (paper §4's
  /// cascading effect). Returns the number of fresh per-item edges made.
  size_t AugmentServe(OverlayIndex node, ItemId item, Coherency c,
                      size_t depth);

  const net::OverlayDelayModel& delays_;
  const LelaOptions options_;
  Rng& rng_;
  Overlay overlay_;
  std::vector<std::vector<OverlayIndex>> levels_{{kSourceOverlayIndex}};
  LelaBuildInfo info_;
};

double Builder::Preference(OverlayIndex candidate, OverlayIndex q,
                           const InterestSet& needed) const {
  const double comm = static_cast<double>(delays_.Delay(candidate, q));
  const double dependents = static_cast<double>(
      overlay_.ConnectionChildren(candidate).size());
  if (options_.preference == PreferenceFunction::kP2) {
    return comm * (1.0 + dependents);
  }
  size_t servable = 0;
  for (const auto& [item, c] : needed) {
    if (CanServe(candidate, item, c)) ++servable;
  }
  return comm * (1.0 + dependents) /
         (1.0 + static_cast<double>(servable));
}

size_t Builder::AugmentServe(OverlayIndex node, ItemId item, Coherency c,
                             size_t depth) {
  if (node == kSourceOverlayIndex) return 0;  // source holds all at c=0
  // Guard against pathological recursion (a correct overlay's parent
  // chains are shorter than the member count).
  assert(depth <= overlay_.member_count());
  (void)depth;
  if (overlay_.Holds(node, item)) {
    const ItemServing& s = overlay_.Serving(node, item);
    if (s.c_serve <= c) return 0;  // already stringent enough
    const OverlayIndex parent = s.parent;
    size_t fresh = AugmentServe(parent, item, c, depth + 1);
    overlay_.SetServing(node, item, c, parent);
    overlay_.TightenItemEdge(parent, node, item, c);
    return fresh;
  }
  // The node does not hold the item: recruit a supplier among its
  // existing connection parents — prefer one already holding the item,
  // otherwise pick one at random (paper §4).
  const auto& parents = overlay_.ConnectionParents(node);
  assert(!parents.empty() && "placed repositories always have a parent");
  OverlayIndex supplier = kInvalidOverlayIndex;
  for (OverlayIndex p : parents) {
    if (overlay_.Holds(p, item)) {
      supplier = p;
      break;
    }
  }
  if (supplier == kInvalidOverlayIndex) {
    supplier = parents[rng_.NextBounded(parents.size())];
  }
  size_t fresh = AugmentServe(supplier, item, c, depth + 1);
  overlay_.AddItemEdge(supplier, node, item, c);
  return fresh + 1;
}

Status Builder::InsertRepository(OverlayIndex q, const InterestSet& needed) {
  if (needed.empty()) {
    // A repository with no data needs joins as a leaf of level 1 with no
    // connections; it can still be recruited as a parent later... but a
    // parent must be reachable from the source for every item it serves,
    // which LeLA guarantees via augmentation, so simply place it.
    overlay_.set_level(q, 1);
    if (levels_.size() < 2) levels_.emplace_back();
    levels_[1].push_back(q);
    info_.levels = levels_.size();
    return Status::Ok();
  }
  for (size_t level = 0; level < levels_.size(); ++level) {
    // Candidates: members of this level with spare connection capacity.
    std::vector<OverlayIndex> candidates;
    for (OverlayIndex m : levels_[level]) {
      if (overlay_.ConnectionChildren(m).size() >= DegreeOf(m)) {
        continue;
      }
      // A repository placed with no data needs has no path to the
      // source, so it cannot act as a parent.
      if (m != kSourceOverlayIndex &&
          overlay_.ConnectionParents(m).empty()) {
        continue;
      }
      candidates.push_back(m);
    }
    if (candidates.empty()) continue;  // pass to the next load controller

    // Preference factors; keep those within the P% window of the best.
    std::vector<std::pair<double, OverlayIndex>> scored;
    scored.reserve(candidates.size());
    for (OverlayIndex m : candidates) {
      scored.emplace_back(Preference(m, q, needed), m);
    }
    std::sort(scored.begin(), scored.end());
    const double best = scored.front().first;
    const double cutoff = best * (1.0 + options_.p_window);
    std::vector<OverlayIndex> window;
    for (const auto& [pref, m] : scored) {
      if (pref <= cutoff || window.empty()) window.push_back(m);
    }

    // Assign each needed item to the most preferred parent that can
    // already serve it; the rest go to the most preferred parent overall
    // through cascading augmentation.
    std::vector<std::pair<OverlayIndex, std::pair<ItemId, Coherency>>>
        assignments;
    std::vector<std::pair<ItemId, Coherency>> leftovers;
    for (const auto& [item, c] : needed) {
      OverlayIndex server = kInvalidOverlayIndex;
      for (OverlayIndex m : window) {
        if (CanServe(m, item, c)) {
          server = m;
          break;
        }
      }
      if (server == kInvalidOverlayIndex) {
        leftovers.emplace_back(item, c);
      } else {
        assignments.emplace_back(server, std::make_pair(item, c));
      }
    }

    for (const auto& [item, c] : needed) overlay_.SetOwnInterest(q, item, c);
    for (const auto& [server, item_c] : assignments) {
      overlay_.AddItemEdge(server, q, item_c.first, item_c.second);
      ++info_.demand_edges;
    }
    if (!leftovers.empty()) {
      const OverlayIndex favorite = window.front();
      // The favorite may need items it never wanted; its own ancestors
      // are augmented transitively up to the source.
      for (const auto& [item, c] : leftovers) {
        // AugmentServe() requires an existing connection parent; attach
        // q to the favorite first if no edge exists yet so the favorite
        // counts q exactly once against its capacity.
        info_.augmented_edges += AugmentServe(favorite, item, c, 0);
        overlay_.AddItemEdge(favorite, q, item, c);
        ++info_.demand_edges;
      }
    }

    overlay_.set_level(q, static_cast<uint32_t>(level + 1));
    if (levels_.size() < level + 2) levels_.emplace_back();
    levels_[level + 1].push_back(q);
    if (overlay_.ConnectionParents(q).size() > 1) {
      ++info_.multi_parent_repositories;
    }
    info_.levels = levels_.size();
    return Status::Ok();
  }
  return Status::CapacityExhausted(
      "no level had spare cooperation capacity");
}

Status Builder::Initialize() {
  if (options_.coop_degree == 0 && options_.per_member_degree.empty()) {
    return Status::InvalidArgument("cooperation degree must be >= 1");
  }
  if (!options_.per_member_degree.empty()) {
    if (options_.per_member_degree.size() != overlay_.member_count()) {
      return Status::InvalidArgument(
          "per_member_degree must cover source + all repositories");
    }
    if (options_.per_member_degree[kSourceOverlayIndex] == 0) {
      return Status::InvalidArgument(
          "the source must offer at least one dependent slot");
    }
  }
  if (options_.p_window < 0.0) {
    return Status::InvalidArgument("p_window must be >= 0");
  }
  if (delays_.member_count() != overlay_.member_count()) {
    return Status::InvalidArgument(
        "delay model must cover source + all repositories");
  }
  // The source holds every item at tolerance 0.
  for (ItemId item = 0; item < overlay_.item_count(); ++item) {
    overlay_.SetServing(kSourceOverlayIndex, item, 0.0,
                        kInvalidOverlayIndex);
  }
  return Status::Ok();
}

Status Builder::JoinMember(OverlayIndex q, const InterestSet& needs) {
  if (q == kSourceOverlayIndex || q >= overlay_.member_count()) {
    return Status::OutOfRange("member index out of range");
  }
  for (const auto& [item, c] : needs) {
    if (item >= overlay_.item_count()) {
      return Status::OutOfRange("interest references unknown item");
    }
    if (c <= 0.0) {
      return Status::InvalidArgument(
          "coherency tolerances must be positive");
    }
  }
  return InsertRepository(q, needs);
}

}  // namespace

Result<LelaResult> BuildOverlay(const net::OverlayDelayModel& delays,
                                const std::vector<InterestSet>& interests,
                                size_t item_count,
                                const LelaOptions& options, Rng& rng) {
  Builder builder(delays, interests.size() + 1, item_count, options, rng);
  D3T_RETURN_IF_ERROR(builder.Initialize());

  // Insertion order.
  std::vector<OverlayIndex> order(interests.size());
  std::iota(order.begin(), order.end(), 1);
  switch (options.insertion_order) {
    case InsertionOrder::kStringentFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&interests](OverlayIndex a, OverlayIndex b) {
                         return MeanCoherency(interests[a - 1]) <
                                MeanCoherency(interests[b - 1]);
                       });
      break;
    case InsertionOrder::kRandom:
      rng.Shuffle(order);
      break;
    case InsertionOrder::kIndexOrder:
      break;
  }

  for (OverlayIndex q : order) {
    D3T_RETURN_IF_ERROR(builder.JoinMember(q, interests[q - 1]));
  }
  LelaBuildInfo info = builder.FinalInfo();
  return LelaResult{builder.TakeOverlay(), info};
}

// ---------------------------------------------------------------------------
// IncrementalLela

struct IncrementalLela::Impl {
  Impl(const net::OverlayDelayModel& delays, size_t item_count,
       const LelaOptions& options, Rng& rng)
      : builder(delays, delays.member_count(), item_count, options, rng),
        joined(delays.member_count(), false) {
    init_status = builder.Initialize();
  }

  Builder builder;
  Status init_status;
  std::vector<bool> joined;
};

IncrementalLela::IncrementalLela(const net::OverlayDelayModel& delays,
                                 size_t item_count,
                                 const LelaOptions& options, Rng& rng)
    : impl_(std::make_unique<Impl>(delays, item_count, options, rng)) {}

IncrementalLela::~IncrementalLela() = default;

Status IncrementalLela::Join(OverlayIndex member, const InterestSet& needs) {
  if (!impl_->init_status.ok()) return impl_->init_status;
  if (member >= impl_->joined.size()) {
    return Status::OutOfRange("member index out of range");
  }
  if (member != kSourceOverlayIndex && impl_->joined[member]) {
    return Status::AlreadyExists("member already joined");
  }
  D3T_RETURN_IF_ERROR(impl_->builder.JoinMember(member, needs));
  impl_->joined[member] = true;
  return Status::Ok();
}

bool IncrementalLela::HasJoined(OverlayIndex member) const {
  return member < impl_->joined.size() && impl_->joined[member];
}

const Overlay& IncrementalLela::overlay() const {
  return impl_->builder.overlay();
}

const LelaBuildInfo& IncrementalLela::info() const {
  return impl_->builder.info();
}

}  // namespace d3t::core
