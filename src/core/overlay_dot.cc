#include "core/overlay_dot.h"

#include <cstdio>
#include <sstream>

namespace d3t::core {

namespace {

std::string NodeName(OverlayIndex m) {
  if (m == kSourceOverlayIndex) return "source";
  return "r" + std::to_string(m);
}

}  // namespace

std::string ConnectionsToDot(const Overlay& overlay) {
  std::ostringstream os;
  os << "digraph d3g {\n  rankdir=TB;\n";
  os << "  source [shape=doublecircle];\n";
  for (OverlayIndex m = 0; m < overlay.member_count(); ++m) {
    for (OverlayIndex child : overlay.ConnectionChildren(m)) {
      // Count the items this connection carries.
      size_t items = 0;
      for (ItemId item = 0; item < overlay.item_count(); ++item) {
        if (!overlay.Holds(m, item)) continue;
        for (const ItemEdge& e : overlay.Serving(m, item).children) {
          if (e.child == child) {
            ++items;
            break;
          }
        }
      }
      os << "  " << NodeName(m) << " -> " << NodeName(child)
         << " [label=\"" << items << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string ItemTreeToDot(const Overlay& overlay, ItemId item) {
  std::ostringstream os;
  os << "digraph d3t_item" << item << " {\n  rankdir=TB;\n";
  os << "  source [shape=doublecircle];\n";
  char label[64];
  for (OverlayIndex m = 0; m < overlay.member_count(); ++m) {
    if (m != kSourceOverlayIndex && overlay.Holds(m, item) &&
        !overlay.Serving(m, item).own_interest) {
      os << "  " << NodeName(m) << " [style=dashed];\n";
    }
  }
  for (OverlayIndex m = 0; m < overlay.member_count(); ++m) {
    if (!overlay.Holds(m, item)) continue;
    for (const ItemEdge& e : overlay.Serving(m, item).children) {
      std::snprintf(label, sizeof(label), "%.3f", e.c);
      os << "  " << NodeName(m) << " -> " << NodeName(e.child)
         << " [label=\"" << label << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace d3t::core
