#ifndef D3T_CORE_LELA_H_
#define D3T_CORE_LELA_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/interest.h"
#include "core/overlay.h"
#include "net/delay_model.h"

namespace d3t::core {

/// Preference-factor variants studied in the paper (Fig. 10).
enum class PreferenceFunction {
  /// P1 = comm_delay * (1 + #dependents) / (1 + #servable items).
  kP1,
  /// P2 = comm_delay * (1 + #dependents); ignores data availability.
  kP2,
};

/// Order in which repositories are inserted into the d3g.
enum class InsertionOrder {
  /// Most stringent (smallest mean tolerance) first — the paper's
  /// observation that stringent repositories must sit closer to the
  /// source.
  kStringentFirst,
  /// Uniformly random order (ablation).
  kRandom,
  /// Given index order.
  kIndexOrder,
};

/// Options of the Level-by-Level Algorithm (paper §4).
struct LelaOptions {
  /// Maximum number of connection dependents any member (including the
  /// source) will serve — the degree of cooperation.
  size_t coop_degree = 5;
  /// Optional per-member override (paper §4: each repository *specifies*
  /// its own degree of cooperation when it joins). Indexed by overlay
  /// member (0 = source); when non-empty it must cover all members and
  /// takes precedence over `coop_degree`. Zero entries mean "offers no
  /// cooperation" (never a parent).
  std::vector<size_t> per_member_degree;
  /// The P% closeness window: candidates within (1 + p_window) of the
  /// smallest preference become parents.
  double p_window = 0.05;
  PreferenceFunction preference = PreferenceFunction::kP1;
  InsertionOrder insertion_order = InsertionOrder::kStringentFirst;
};

/// Diagnostics of one construction.
struct LelaBuildInfo {
  size_t levels = 0;
  /// Per-item edges created for repositories' own needs.
  size_t demand_edges = 0;
  /// Per-item edges created by cascading augmentation (a parent taking
  /// on data it did not itself need).
  size_t augmented_edges = 0;
  /// Repositories served by more than one connection parent.
  size_t multi_parent_repositories = 0;
};

/// Result of BuildOverlay.
struct LelaResult {
  Overlay overlay;
  LelaBuildInfo info;
};

/// Builds the d3g with LeLA. `interests[i]` belongs to overlay member
/// i + 1; member 0 is the source, which holds every item at tolerance 0.
/// `delays` supplies repository-to-repository communication delays for
/// the preference factor and must cover all members. `rng` breaks the
/// random choices the paper leaves open (supplier selection during
/// cascading augmentation, random insertion order).
Result<LelaResult> BuildOverlay(const net::OverlayDelayModel& delays,
                                const std::vector<InterestSet>& interests,
                                size_t item_count, const LelaOptions& options,
                                Rng& rng);

/// Incremental form of LeLA — the shape the paper actually describes:
/// repositories join a live network one at a time (§4, "when a
/// repository wishes to enter the network it specifies the list of data
/// items of interest, their c values, and its degree of cooperation").
/// Capacity for members is fixed by the delay model (member 0 is the
/// source); members may join in any order, each at most once.
///
///   IncrementalLela lela(delays, item_count, options, rng);
///   lela.Join(3, needs_of_member_3);
///   lela.Join(1, needs_of_member_1);
///   const Overlay& overlay = lela.overlay();
class IncrementalLela {
 public:
  /// `rng` must outlive the builder. Invalid options surface on the
  /// first Join().
  IncrementalLela(const net::OverlayDelayModel& delays, size_t item_count,
                  const LelaOptions& options, Rng& rng);
  ~IncrementalLela();

  IncrementalLela(const IncrementalLela&) = delete;
  IncrementalLela& operator=(const IncrementalLela&) = delete;

  /// Places `member` (in [1, delays.member_count())) into the d3g with
  /// the given needs. Fails on duplicate joins, unknown members, bad
  /// tolerances, or exhausted cooperation capacity.
  Status Join(OverlayIndex member, const InterestSet& needs);

  /// True when `member` has joined.
  bool HasJoined(OverlayIndex member) const;

  /// The overlay built so far (the source is always present).
  const Overlay& overlay() const;
  const LelaBuildInfo& info() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace d3t::core

#endif  // D3T_CORE_LELA_H_
