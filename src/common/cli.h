#ifndef D3T_COMMON_CLI_H_
#define D3T_COMMON_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace d3t {

/// Minimal command-line flag parser shared by the bench and example
/// binaries. Accepts `--name=value`, `--name value` and bare `--flag`
/// (boolean true). Unknown flags are an error so typos do not silently
/// change an experiment.
class CommandLine {
 public:
  /// Declares a flag with a default value and help text. Call before
  /// Parse().
  void AddFlag(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown or malformed flags.
  Status Parse(int argc, const char* const* argv);

  /// Typed accessors. A value that does not parse as the requested type
  /// falls back to the *declared* default — and says so on stderr, so a
  /// typo like `--ticks=12o0` cannot silently reconfigure an experiment
  /// (historically the fallback was a silent 0/0.0/false, not even the
  /// declared default). Each flag warns at most once per accessor type.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// Renders a usage/help string listing all declared flags.
  std::string Help(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    /// Accessor types that already warned about this flag's unparsable
    /// value (bitmask; keeps repeated Get* calls from spamming stderr).
    mutable unsigned warned_mask = 0;
  };
  /// Returns the flag's value if `parses(value)` accepts it, otherwise
  /// warns once on stderr and returns the declared default.
  const std::string& ValueOrWarn(const std::string& name, unsigned type_bit,
                                 const char* type_name,
                                 bool (*parses)(const std::string&)) const;

  std::map<std::string, Flag> flags_;
};

}  // namespace d3t

#endif  // D3T_COMMON_CLI_H_
