#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace d3t {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  count_ = total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::min() const { return count_ == 0 ? 0.0 : min_; }
double StreamingStats::max() const { return count_ == 0 ? 0.0 : max_; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double QuantileSketch::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

}  // namespace d3t
