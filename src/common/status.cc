#include "common/status.h"

namespace d3t {

std::string_view StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "Ok";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kCapacityExhausted:
      return "CapacityExhausted";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace d3t
