#ifndef D3T_COMMON_RESULT_H_
#define D3T_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace d3t {

/// A value-or-error holder in the spirit of absl::StatusOr. A `Result<T>`
/// holds either a `T` or a non-OK `Status`. Accessing the value of an
/// errored result is a programming error (asserted in debug builds).
/// Class-level [[nodiscard]]: dropping a returned Result loses both the
/// value and the error; cast to (void) to discard deliberately.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a result holding a non-OK status. Passing an OK status is a
  /// programming error: an OK result must carry a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status (OK if a value is held).
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when errored.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace d3t

#endif  // D3T_COMMON_RESULT_H_
