#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace d3t {

namespace {

bool ParsesAsInt(const std::string& value) {
  if (value.empty()) return false;
  char* end = nullptr;
  (void)std::strtoll(value.c_str(), &end, 10);
  return end != value.c_str() && *end == '\0';
}

bool ParsesAsDouble(const std::string& value) {
  if (value.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(value.c_str(), &end);
  return end != value.c_str() && *end == '\0';
}

bool ParsesAsBool(const std::string& value) {
  return value == "true" || value == "1" || value == "yes" ||
         value == "on" || value == "false" || value == "0" ||
         value == "no" || value == "off";
}

bool TruthyBool(const std::string& value) {
  return value == "true" || value == "1" || value == "yes" || value == "on";
}

}  // namespace

void CommandLine::AddFlag(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

Status CommandLine::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    if (!has_value) {
      // `--flag value` form if the next token is not itself a flag;
      // otherwise a bare boolean.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return Status::Ok();
}

std::string CommandLine::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

const std::string& CommandLine::ValueOrWarn(
    const std::string& name, unsigned type_bit, const char* type_name,
    bool (*parses)(const std::string&)) const {
  static const std::string kEmpty;
  auto it = flags_.find(name);
  if (it == flags_.end()) return kEmpty;
  const Flag& flag = it->second;
  if (parses(flag.value)) return flag.value;
  if ((flag.warned_mask & type_bit) == 0) {
    flag.warned_mask |= type_bit;
    std::fprintf(stderr,
                 "warning: --%s value '%s' is not a valid %s; using the "
                 "default '%s'\n",
                 name.c_str(), flag.value.c_str(), type_name,
                 flag.default_value.c_str());
  }
  return flag.default_value;
}

int64_t CommandLine::GetInt(const std::string& name) const {
  const std::string& value = ValueOrWarn(name, 1u, "integer", ParsesAsInt);
  return static_cast<int64_t>(std::strtoll(value.c_str(), nullptr, 10));
}

double CommandLine::GetDouble(const std::string& name) const {
  const std::string& value =
      ValueOrWarn(name, 2u, "number", ParsesAsDouble);
  return std::strtod(value.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name) const {
  return TruthyBool(ValueOrWarn(name, 4u, "boolean", ParsesAsBool));
}

bool CommandLine::Has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CommandLine::Help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")  "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace d3t
