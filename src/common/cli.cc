#include "common/cli.h"

#include <cstdlib>
#include <sstream>

namespace d3t {

void CommandLine::AddFlag(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

Status CommandLine::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + arg);
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    if (!has_value) {
      // `--flag value` form if the next token is not itself a flag;
      // otherwise a bare boolean.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return Status::Ok();
}

std::string CommandLine::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? std::string() : it->second.value;
}

int64_t CommandLine::GetInt(const std::string& name) const {
  return static_cast<int64_t>(std::strtoll(GetString(name).c_str(),
                                           nullptr, 10));
}

double CommandLine::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

bool CommandLine::Has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CommandLine::Help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")  "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace d3t
