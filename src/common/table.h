#ifndef D3T_COMMON_TABLE_H_
#define D3T_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace d3t {

/// Fixed-width ASCII table used by every bench binary to print the rows
/// and series the paper's tables and figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

  /// Renders the table with a header rule.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace d3t

#endif  // D3T_COMMON_TABLE_H_
