#include "common/random.h"

#include <cassert>
#include <cmath>

namespace d3t {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Debiased modulo via rejection sampling on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDoubleInRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextPareto(double minimum, double alpha) {
  assert(minimum > 0.0 && alpha > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return minimum / std::pow(u, 1.0 / alpha);
}

double Rng::NextParetoWithMean(double minimum, double mean) {
  assert(mean > minimum && minimum > 0.0);
  // E[X] = minimum * alpha / (alpha - 1)  =>  alpha = mean / (mean - min).
  const double alpha = mean / (mean - minimum);
  return NextPareto(minimum, alpha);
}

double Rng::NextExponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 == 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Fork(uint64_t stream_id) {
  uint64_t mix = s_[0] ^ Rotl(s_[2], 29) ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  uint64_t sm = mix;
  return Rng(SplitMix64(sm));
}

}  // namespace d3t
