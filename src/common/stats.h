#ifndef D3T_COMMON_STATS_H_
#define D3T_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace d3t {

/// Constant-memory running statistics (Welford's algorithm for variance).
/// Used for trace calibration, delay reporting and experiment metrics.
class StreamingStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const StreamingStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples to answer arbitrary quantile queries. Memory is O(n);
/// intended for experiment post-processing, not hot simulation paths.
class QuantileSketch {
 public:
  void Add(double x) { samples_.push_back(x); }
  size_t count() const { return samples_.size(); }

  /// Quantile in [0,1] by nearest-rank on the sorted samples. Returns 0
  /// when empty.
  double Quantile(double q) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace d3t

#endif  // D3T_COMMON_STATS_H_
