#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace d3t {

size_t ThreadPool::DefaultThreadCount() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) thread_count = DefaultThreadCount();
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++outstanding_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace d3t
