#ifndef D3T_COMMON_RANDOM_H_
#define D3T_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace d3t {

/// SplitMix64 — used to seed Xoshiro and as a cheap stateless mixer.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, seedable PRNG (xoshiro256++) with the distribution
/// helpers the simulator needs. All simulation randomness flows through
/// this class so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Pareto-distributed value with minimum `minimum` and shape `alpha`
  /// (alpha > 1 required for a finite mean of minimum*alpha/(alpha-1)).
  /// The paper draws node-to-node link delays from this family.
  double NextPareto(double minimum, double alpha);

  /// Pareto value parameterized by its mean instead of its shape:
  /// alpha = mean / (mean - minimum). Requires mean > minimum > 0.
  /// Matches the paper's delay model (mean 15 ms, minimum 2 ms).
  double NextParetoWithMean(double minimum, double mean);

  /// Exponential with the given mean (> 0).
  double NextExponential(double mean);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent stream; deterministic function of the current
  /// state and `stream_id`. Used to give each subsystem its own stream.
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace d3t

#endif  // D3T_COMMON_RANDOM_H_
