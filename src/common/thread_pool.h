#ifndef D3T_COMMON_THREAD_POOL_H_
#define D3T_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace d3t {

/// Fixed-size worker pool for independent simulation runs (sharded
/// multi-source engines, sweep points). Tasks are plain closures; the
/// pool makes no ordering promises, so callers that need deterministic
/// output must write results into pre-assigned slots and aggregate after
/// Wait() — see exp::SimulationSession::RunAll.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers; 0 picks DefaultThreadCount().
  explicit ThreadPool(size_t thread_count = 0);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Safe to call from
  /// multiple threads; must not be called concurrently with destruction.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. The pool is
  /// reusable afterwards.
  void Wait();

  size_t thread_count() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  /// Queued plus currently-running tasks; Wait() returns at 0.
  size_t outstanding_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace d3t

#endif  // D3T_COMMON_THREAD_POOL_H_
