#ifndef D3T_COMMON_STATUS_H_
#define D3T_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace d3t {

/// RocksDB-style status object used for error handling throughout the
/// library. The public API never throws; fallible operations return a
/// `Status` (or a `Result<T>`, see result.h). The class-level
/// [[nodiscard]] makes silently dropping a returned Status a compile
/// warning; cast to (void) to discard deliberately.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kFailedPrecondition,
    kOutOfRange,
    kIoError,
    kCapacityExhausted,
    kInternal,
  };

  /// Default-constructed status is OK.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status CapacityExhausted(std::string_view msg) {
    return Status(Code::kCapacityExhausted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad fanout".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCapacityExhausted() const {
    return code_ == Code::kCapacityExhausted;
  }
  bool IsInternal() const { return code_ == Code::kInternal; }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Returns the canonical name of a status code ("Ok", "NotFound", ...).
std::string_view StatusCodeName(Status::Code code);

}  // namespace d3t

/// Propagates a non-OK status to the caller. For internal use in .cc files.
#define D3T_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::d3t::Status _d3t_status = (expr);            \
    if (!_d3t_status.ok()) return _d3t_status;     \
  } while (0)

#endif  // D3T_COMMON_STATUS_H_
