#ifndef D3T_SIM_TIME_H_
#define D3T_SIM_TIME_H_

#include <cstdint>

namespace d3t::sim {

/// Simulated time in microseconds. int64 covers ~292k years; the paper's
/// traces span ~10^10 us (10,000 ticks at ~1 tick/second).
using SimTime = int64_t;

inline constexpr SimTime kSimTimeMax = INT64_MAX;

/// Conversion helpers. Delays in the paper are quoted in milliseconds.
constexpr SimTime Micros(int64_t us) { return us; }
constexpr SimTime Millis(double ms) {
  return static_cast<SimTime>(ms * 1000.0);
}
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace d3t::sim

#endif  // D3T_SIM_TIME_H_
