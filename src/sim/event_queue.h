#ifndef D3T_SIM_EVENT_QUEUE_H_
#define D3T_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace d3t::sim {

/// Callback executed when an event fires. Receives the firing time.
using EventFn = std::function<void(SimTime)>;

/// A deterministic min-heap of timed events. Ties in firing time are
/// broken by insertion sequence so runs are reproducible regardless of
/// heap internals. Entry slots are recycled through a free list so memory
/// stays proportional to the number of *pending* events, not the total
/// ever scheduled.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when` (must be >= 0). Returns a
  /// unique, monotonically increasing event id.
  uint64_t Schedule(SimTime when, EventFn fn);

  /// Cancels a scheduled event. Returns false if the id already fired,
  /// was cancelled, or never existed. O(high-water mark of concurrently
  /// scheduled events) — it scans the slot table, which never shrinks.
  /// Cancellation is a rare control operation; keeping an id lookup
  /// table would put a hash insert + erase on every Schedule/RunNext —
  /// the simulation hot path.
  bool Cancel(uint64_t id);

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  /// Time of the earliest live event; kSimTimeMax when empty.
  SimTime PeekTime() const;

  /// Pops and runs the earliest event; returns its time. Must not be
  /// called when empty. The callback may schedule further events.
  SimTime RunNext();

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventFn fn;
    bool cancelled = false;
  };
  struct HeapItem {
    SimTime when;
    uint64_t seq;
    size_t index;  // into entries_
    bool operator>(const HeapItem& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Pops heap items whose entry slot was cancelled or recycled.
  void DropDeadTop() const;

  std::vector<Entry> entries_;
  mutable std::vector<size_t> free_list_;
  mutable std::priority_queue<HeapItem, std::vector<HeapItem>,
                              std::greater<HeapItem>>
      heap_;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
};

}  // namespace d3t::sim

#endif  // D3T_SIM_EVENT_QUEUE_H_
