#ifndef D3T_SIM_EVENT_QUEUE_H_
#define D3T_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <type_traits>
#include <vector>

#include "sim/time.h"

namespace d3t::sim {

/// Discriminator of the typed POD event variant. The simulation hot
/// path (source ticks, message deliveries, node processing) carries
/// these 16-byte PODs instead of type-erased closures; kCallback is the
/// escape hatch for tests and cold control paths.
enum class EventKind : uint32_t {
  /// Generic std::function callback; payload `b` is the queue-internal
  /// slot of the stored closure.
  kCallback = 0,
  /// One source trace tick: `a` = item, `b` = tick index.
  kSourceTick,
  /// A batched message delivery: `a` = destination overlay node, `b` =
  /// the scheduler's batch-pool slot holding the span of pooled jobs.
  kDelivery,
  /// A node dequeues and processes its next queued job: `a` = node.
  kNodeProcess,
  /// One phase of a pull-engine poll round trip: `a` = poll-state
  /// index, `b` = phase (request arrival / serviced / response).
  kPullPoll,
  /// End-of-run hook (e.g. lazy fidelity finalization at the horizon).
  kFinalizeHook,
  /// One scripted world-mutation op of the run's Scenario (repository
  /// failure/recovery, interest churn, coherency renegotiation): `a` =
  /// index into the per-run scenario op table, `b` = phase (0 applies
  /// the op; 1 is the deferred orphan repair a failure schedules after
  /// its silence-detection window). Carrying an index keeps the event a
  /// POD — the op payload lives in the immutable Scenario, never in a
  /// closure.
  kScenario,
};

/// A 16-byte POD event: a kind tag plus two untyped payload words whose
/// meaning is fixed by the kind (see EventKind). Handlers decode with
/// the named accessors of the scheduling layer; the queue never looks
/// inside the payload except for kCallback.
// d3t-lint: pod-event
struct Event {
  EventKind kind = EventKind::kCallback;
  uint32_t a = 0;
  uint64_t b = 0;

  static Event SourceTick(uint32_t item, uint64_t tick_index) {
    return Event{EventKind::kSourceTick, item, tick_index};
  }
  static Event Delivery(uint32_t node, uint64_t batch_slot) {
    return Event{EventKind::kDelivery, node, batch_slot};
  }
  static Event NodeProcess(uint32_t node) {
    return Event{EventKind::kNodeProcess, node, 0};
  }
  static Event PullPoll(uint32_t state_index, uint64_t phase) {
    return Event{EventKind::kPullPoll, state_index, phase};
  }
  static Event FinalizeHook() {
    return Event{EventKind::kFinalizeHook, 0, 0};
  }
  static Event Scenario(uint32_t op_index, uint64_t phase = 0) {
    return Event{EventKind::kScenario, op_index, phase};
  }
};
static_assert(sizeof(Event) == 16, "hot-path events must stay 16 bytes");
static_assert(std::is_trivially_copyable_v<Event>,
              "hot-path events must be PODs");

/// Receiver of typed events. The engine (or any other driver) implements
/// this once and decodes the POD payload per kind; kCallback events
/// never reach the handler (the queue runs the stored closure itself).
class EventHandler {
 public:
  virtual void HandleEvent(SimTime t, const Event& event) = 0;

 protected:
  ~EventHandler() = default;
};

/// Callback executed when a kCallback event fires. Receives the firing
/// time.
using EventFn = std::function<void(SimTime)>;

/// A deterministic min-heap of timed events. Ties in firing time are
/// broken by insertion sequence so runs are reproducible regardless of
/// heap internals. Entry slots are recycled through a free list so memory
/// stays proportional to the number of *pending* events, not the total
/// ever scheduled. Entries store the 16-byte POD Event; closures of
/// kCallback events live in a side table indexed by the event payload,
/// keeping std::function construction off the typed hot path entirely.
class EventQueue {
 public:
  /// Schedules a typed POD event at absolute time `when` (must be >= 0).
  /// Returns a unique, monotonically increasing event id. `event.kind`
  /// must not be kCallback — callback slots are queue-internal; use the
  /// EventFn overload, which allocates one.
  uint64_t Schedule(SimTime when, Event event);

  /// Schedules `fn` at absolute time `when` as a kCallback event (the
  /// escape hatch for tests and cold control paths).
  uint64_t Schedule(SimTime when, EventFn fn);

  /// Cancels a scheduled event. Returns false if the id already fired,
  /// was cancelled, or never existed. O(high-water mark of concurrently
  /// scheduled events) — it scans the slot table, which never shrinks.
  /// Cancellation is a rare control operation; keeping an id lookup
  /// table would put a hash insert + erase on every Schedule/RunNext —
  /// the simulation hot path.
  bool Cancel(uint64_t id);

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  /// Time of the earliest live event; kSimTimeMax when empty.
  SimTime PeekTime() const;

  /// Pops and runs the earliest event; returns its time. Must not be
  /// called when empty. kCallback events run their stored closure;
  /// every other kind is dispatched to `handler` (which must then be
  /// non-null). The callback/handler may schedule further events.
  SimTime RunNext(EventHandler* handler = nullptr);

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Event event;
    bool cancelled = false;
  };
  struct HeapItem {
    SimTime when;
    uint64_t seq;
    size_t index;  // into entries_
    bool operator>(const HeapItem& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// Shared insertion path; `event` may be a queue-built kCallback.
  uint64_t ScheduleInternal(SimTime when, const Event& event);
  /// Pops heap items whose entry slot was cancelled or recycled.
  void DropDeadTop() const;
  /// Releases the closure slot of a cancelled/consumed kCallback entry.
  void ReleaseCallback(const Event& event);

  std::vector<Entry> entries_;
  mutable std::vector<size_t> free_list_;
  mutable std::priority_queue<HeapItem, std::vector<HeapItem>,
                              std::greater<HeapItem>>
      heap_;
  /// Side table of kCallback closures, recycled through its own free
  /// list; Event::b of a kCallback event indexes it.
  std::vector<EventFn> callbacks_;
  std::vector<uint32_t> callback_free_;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
};

}  // namespace d3t::sim

#endif  // D3T_SIM_EVENT_QUEUE_H_
