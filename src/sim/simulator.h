#ifndef D3T_SIM_SIMULATOR_H_
#define D3T_SIM_SIMULATOR_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace d3t::sim {

/// Discrete-event simulation driver: owns the clock and the event queue
/// and advances time by running events in order. Typed POD events are
/// dispatched to the registered EventHandler; kCallback events run their
/// stored closure (the escape hatch for tests and cold control paths).
class Simulator {
 public:
  SimTime now() const { return now_; }
  EventQueue& queue() { return queue_; }

  /// Registers the receiver of typed events. Must be set before any
  /// typed event fires; may be null while only callbacks are scheduled.
  void set_handler(EventHandler* handler) { handler_ = handler; }
  EventHandler* handler() const { return handler_; }

  /// Schedules a typed event `delay` microseconds from now (delay >= 0).
  uint64_t ScheduleAfter(SimTime delay, Event event);

  /// Schedules a typed event at absolute time `when` (>= now()).
  uint64_t ScheduleAt(SimTime when, Event event);

  /// Schedules `fn` `delay` microseconds from now (delay >= 0).
  uint64_t ScheduleAfter(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `when` (>= now()).
  uint64_t ScheduleAt(SimTime when, EventFn fn);

  /// Runs events until the queue empties or `horizon` is passed (events
  /// scheduled strictly after `horizon` are left pending). Returns the
  /// number of events executed.
  uint64_t RunUntil(SimTime horizon);

  /// Runs all pending events to exhaustion.
  uint64_t Run() { return RunUntil(kSimTimeMax); }

  /// Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  EventHandler* handler_ = nullptr;
  uint64_t events_executed_ = 0;
};

}  // namespace d3t::sim

#endif  // D3T_SIM_SIMULATOR_H_
