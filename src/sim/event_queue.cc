#include "sim/event_queue.h"

#include <cassert>

namespace d3t::sim {

// d3t-lint: hot
uint64_t EventQueue::Schedule(SimTime when, Event event) {
  // Callback slots are queue-internal: an externally built kCallback
  // event would index (or corrupt) the closure side table.
  assert(event.kind != EventKind::kCallback);
  return ScheduleInternal(when, event);
}

uint64_t EventQueue::ScheduleInternal(SimTime when, const Event& event) {
  assert(when >= 0);
  const uint64_t seq = next_seq_++;
  size_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    entries_[index] = Entry{when, seq, event, false};
  } else {
    index = entries_.size();
    entries_.push_back(Entry{when, seq, event, false});
  }
  heap_.push(HeapItem{when, seq, index});
  ++live_;
  return seq;
}

uint64_t EventQueue::Schedule(SimTime when, EventFn fn) {
  uint32_t slot;
  if (!callback_free_.empty()) {
    slot = callback_free_.back();
    callback_free_.pop_back();
    callbacks_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(callbacks_.size());
    callbacks_.push_back(std::move(fn));
  }
  return ScheduleInternal(when, Event{EventKind::kCallback, 0, slot});
}

void EventQueue::ReleaseCallback(const Event& event) {
  if (event.kind != EventKind::kCallback) return;
  const uint32_t slot = static_cast<uint32_t>(event.b);
  callbacks_[slot] = nullptr;
  callback_free_.push_back(slot);
}

bool EventQueue::Cancel(uint64_t id) {
  if (id >= next_seq_) return false;  // never issued
  // Linear scan over the entry slots: a slot still carrying this seq is
  // the live (or already consumed/cancelled) incarnation of the event.
  for (Entry& e : entries_) {
    if (e.seq != id) continue;
    if (e.cancelled) return false;
    e.cancelled = true;
    ReleaseCallback(e.event);  // release the closure now; the slot is
                               // recycled when its heap item surfaces
                               // (DropDeadTop)
    --live_;
    return true;
  }
  return false;  // slot recycled: the event fired long ago
}

void EventQueue::DropDeadTop() const {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    const Entry& e = entries_[top.index];
    // Stale if the slot was reused (seq mismatch) or explicitly cancelled.
    if (e.seq == top.seq && !e.cancelled) return;
    heap_.pop();
    // A cancelled entry whose (only) heap item just left the heap can be
    // recycled; a seq mismatch means the slot was already recycled.
    if (e.seq == top.seq) free_list_.push_back(top.index);
  }
}

SimTime EventQueue::PeekTime() const {
  DropDeadTop();
  if (heap_.empty()) return kSimTimeMax;
  return heap_.top().when;
}

// d3t-lint: hot
SimTime EventQueue::RunNext(EventHandler* handler) {
  DropDeadTop();
  assert(!heap_.empty());
  const HeapItem top = heap_.top();
  heap_.pop();
  Entry& e = entries_[top.index];
  const Event event = e.event;
  const SimTime when = e.when;
  e.cancelled = true;  // mark consumed before running (the handler or
                       // callback may schedule further events)
  free_list_.push_back(top.index);
  --live_;
  if (event.kind == EventKind::kCallback) {
    // d3t-lint: allow(hot-alloc) kCallback cold path moves the stored closure out of the side table; nothing is constructed or captured
    EventFn fn = std::move(callbacks_[static_cast<uint32_t>(event.b)]);
    ReleaseCallback(event);
    fn(when);
  } else {
    assert(handler != nullptr &&
           "typed event popped from a queue run without a handler");
    handler->HandleEvent(when, event);
  }
  return when;
}

}  // namespace d3t::sim
