#include "sim/event_queue.h"

#include <cassert>

namespace d3t::sim {

uint64_t EventQueue::Schedule(SimTime when, EventFn fn) {
  assert(when >= 0);
  const uint64_t seq = next_seq_++;
  size_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    entries_[index] = Entry{when, seq, std::move(fn), false};
  } else {
    index = entries_.size();
    entries_.push_back(Entry{when, seq, std::move(fn), false});
  }
  heap_.push(HeapItem{when, seq, index});
  ++live_;
  return seq;
}

bool EventQueue::Cancel(uint64_t id) {
  if (id >= next_seq_) return false;  // never issued
  // Linear scan over the entry slots: a slot still carrying this seq is
  // the live (or already consumed/cancelled) incarnation of the event.
  for (Entry& e : entries_) {
    if (e.seq != id) continue;
    if (e.cancelled) return false;
    e.cancelled = true;
    e.fn = nullptr;  // release the closure now; the slot is recycled
                     // when its heap item surfaces (DropDeadTop)
    --live_;
    return true;
  }
  return false;  // slot recycled: the event fired long ago
}

void EventQueue::DropDeadTop() const {
  while (!heap_.empty()) {
    const HeapItem top = heap_.top();
    const Entry& e = entries_[top.index];
    // Stale if the slot was reused (seq mismatch) or explicitly cancelled.
    if (e.seq == top.seq && !e.cancelled) return;
    heap_.pop();
    // A cancelled entry whose (only) heap item just left the heap can be
    // recycled; a seq mismatch means the slot was already recycled.
    if (e.seq == top.seq) free_list_.push_back(top.index);
  }
}

SimTime EventQueue::PeekTime() const {
  DropDeadTop();
  if (heap_.empty()) return kSimTimeMax;
  return heap_.top().when;
}

SimTime EventQueue::RunNext() {
  DropDeadTop();
  assert(!heap_.empty());
  const HeapItem top = heap_.top();
  heap_.pop();
  Entry& e = entries_[top.index];
  EventFn fn = std::move(e.fn);
  const SimTime when = e.when;
  e.cancelled = true;  // mark consumed before running (fn may reschedule)
  free_list_.push_back(top.index);
  --live_;
  fn(when);
  return when;
}

}  // namespace d3t::sim
