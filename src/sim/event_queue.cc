#include "sim/event_queue.h"

#include <cassert>

namespace d3t::sim {

uint64_t EventQueue::Schedule(SimTime when, EventFn fn) {
  assert(when >= 0);
  const uint64_t seq = next_seq_++;
  size_t index;
  if (!free_list_.empty()) {
    index = free_list_.back();
    free_list_.pop_back();
    entries_[index] = Entry{when, seq, std::move(fn), false};
  } else {
    index = entries_.size();
    entries_.push_back(Entry{when, seq, std::move(fn), false});
  }
  id_to_index_.emplace(seq, index);
  heap_.push(HeapItem{when, seq, index});
  ++live_;
  return seq;
}

bool EventQueue::Cancel(uint64_t id) {
  auto it = id_to_index_.find(id);
  if (it == id_to_index_.end()) return false;
  Entry& e = entries_[it->second];
  if (e.seq != id || e.cancelled) return false;
  e.cancelled = true;
  id_to_index_.erase(it);
  --live_;
  return true;
}

void EventQueue::DropDeadTop() const {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.top();
    const Entry& e = entries_[top.index];
    // Stale if the slot was reused (seq mismatch) or explicitly cancelled.
    if (e.seq != top.seq || e.cancelled) {
      heap_.pop();
    } else {
      return;
    }
  }
}

SimTime EventQueue::PeekTime() const {
  DropDeadTop();
  if (heap_.empty()) return kSimTimeMax;
  return heap_.top().when;
}

SimTime EventQueue::RunNext() {
  DropDeadTop();
  assert(!heap_.empty());
  const HeapItem top = heap_.top();
  heap_.pop();
  Entry& e = entries_[top.index];
  EventFn fn = std::move(e.fn);
  const SimTime when = e.when;
  e.cancelled = true;  // mark consumed before running (fn may reschedule)
  id_to_index_.erase(top.seq);
  free_list_.push_back(top.index);
  --live_;
  fn(when);
  return when;
}

}  // namespace d3t::sim
