#include "sim/simulator.h"

#include <cassert>

namespace d3t::sim {

uint64_t Simulator::ScheduleAfter(SimTime delay, Event event) {
  assert(delay >= 0);
  return queue_.Schedule(now_ + delay, event);
}

uint64_t Simulator::ScheduleAt(SimTime when, Event event) {
  assert(when >= now_);
  return queue_.Schedule(when, event);
}

uint64_t Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  assert(delay >= 0);
  return queue_.Schedule(now_ + delay, std::move(fn));
}

uint64_t Simulator::ScheduleAt(SimTime when, EventFn fn) {
  assert(when >= now_);
  return queue_.Schedule(when, std::move(fn));
}

uint64_t Simulator::RunUntil(SimTime horizon) {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    const SimTime next = queue_.PeekTime();
    if (next > horizon) break;
    // Advance the clock before running the event so that now() is the
    // event's firing time inside the handler/callback.
    now_ = next;
    queue_.RunNext(handler_);
    ++executed;
  }
  events_executed_ += executed;
  if (now_ < horizon && horizon != kSimTimeMax) now_ = horizon;
  return executed;
}

}  // namespace d3t::sim
