#ifndef D3T_EXP_EXPERIMENT_H_
#define D3T_EXP_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/lela.h"
#include "net/delay_model.h"
#include "trace/trace.h"

namespace d3t::exp {

/// Full description of one simulation run, defaulted to the paper's base
/// case (§6.1): 1 source + 100 repositories + 600 routers, 100 data
/// items requested with 50% probability, T% stringent tolerances,
/// 12.5 ms computational delay, Pareto link delays.
struct ExperimentConfig {
  // --- physical network -------------------------------------------------
  size_t repositories = 100;
  size_t routers = 600;
  /// Use Floyd-Warshall (paper-faithful) when true; Dijkstra rows
  /// restricted to overlay members otherwise (for large networks).
  bool use_floyd_warshall = true;

  // --- workload ----------------------------------------------------------
  size_t items = 100;
  size_t ticks = 10000;
  double item_probability = 0.5;
  /// The paper's T: fraction of a repository's items with stringent
  /// tolerances, in [0, 1].
  double stringent_fraction = 0.5;

  // --- overlay construction ---------------------------------------------
  /// Degree of cooperation *offered* by every member.
  size_t coop_degree = 5;
  /// When true, the effective degree is min(offered, Eq. (2) value).
  bool controlled_cooperation = false;
  /// Eq. (2)'s interest-fraction constant f.
  double coop_f = 50.0;
  double p_window = 0.05;
  core::PreferenceFunction preference = core::PreferenceFunction::kP1;
  core::InsertionOrder insertion_order =
      core::InsertionOrder::kStringentFirst;

  // --- timing --------------------------------------------------------
  double comp_delay_ms = 12.5;
  /// When > 0, the pairwise delay matrix is rescaled so its mean equals
  /// this value (the x-axis of Figs. 5 and 7b). 0 keeps topology-native
  /// delays. Negative forces all-zero communication delays.
  double comm_delay_mean_ms = 0.0;
  /// See EngineOptions::tag_check_cost_factor.
  double tag_check_cost_factor = 0.0;

  // --- dissemination -------------------------------------------------
  /// "distributed", "centralized", "eq3-only" or "all-updates".
  std::string policy = "distributed";

  uint64_t seed = 42;
};

/// Everything a run reports.
struct ExperimentResult {
  core::EngineMetrics metrics;
  core::OverlayShape shape;
  core::LelaBuildInfo build_info;
  /// Degree actually enforced (after controlled cooperation).
  size_t effective_degree = 0;
  /// Mean repository-to-repository delay of the (possibly rescaled)
  /// delay model, in ms, and the mean physical hop count.
  double mean_pair_delay_ms = 0.0;
  double mean_pair_hops = 0.0;
};

/// Expensive, sweep-invariant artifacts: the routed topology's overlay
/// delay model, the trace library and the interest sets. Building these
/// once and sweeping overlay/timing/policy parameters keeps figure
/// sweeps fast and holds the workload fixed across sweep points, exactly
/// as the paper varies one knob at a time.
class Workbench {
 public:
  /// Builds network, traces and interests from `config` (the overlay /
  /// timing / policy fields are ignored here and supplied per run).
  static Result<Workbench> Create(const ExperimentConfig& config);

  const net::OverlayDelayModel& delays() const { return delays_; }
  const std::vector<trace::Trace>& traces() const { return traces_; }
  const std::vector<core::InterestSet>& interests() const {
    return interests_;
  }
  const ExperimentConfig& base_config() const { return base_; }

  /// Runs one experiment on the prebuilt substrate. Only overlay,
  /// timing, policy, and workload-independent fields of `config` are
  /// honored; network and workload fields must match the base config.
  Result<ExperimentResult> Run(const ExperimentConfig& config) const;

 private:
  Workbench(ExperimentConfig base, net::OverlayDelayModel delays,
            std::vector<trace::Trace> traces,
            std::vector<core::InterestSet> interests)
      : base_(std::move(base)),
        delays_(std::move(delays)),
        traces_(std::move(traces)),
        interests_(std::move(interests)) {}

  ExperimentConfig base_;
  net::OverlayDelayModel delays_;
  std::vector<trace::Trace> traces_;
  std::vector<core::InterestSet> interests_;
};

/// Convenience wrapper: builds a Workbench and runs once.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

}  // namespace d3t::exp

#endif  // D3T_EXP_EXPERIMENT_H_
