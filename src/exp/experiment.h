#ifndef D3T_EXP_EXPERIMENT_H_
#define D3T_EXP_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "exp/config.h"
#include "exp/session.h"

namespace d3t::exp {

/// Compatibility wrapper over the SimulationSession API (exp/session.h)
/// for callers still on the flat ExperimentConfig. A Workbench is a
/// single-source session: Create() builds the World once from the
/// network/workload/seed fields, Run() turns the overlay/timing/policy
/// fields into a RunSpec and executes it against the shared World. New
/// code should use SessionBuilder + RunSpec directly.
class Workbench {
 public:
  /// Builds network, traces and interests from `config` (the overlay /
  /// timing fields are ignored here and supplied per run). The policy
  /// name is validated here — at build time — so a typo fails before any
  /// substrate work.
  static Result<Workbench> Create(const ExperimentConfig& config);

  const net::OverlayDelayModel& delays() const {
    return session_.world().delays();
  }
  const std::vector<trace::Trace>& traces() const {
    return session_.world().traces();
  }
  const std::vector<core::InterestSet>& interests() const {
    return session_.world().interests();
  }
  const ExperimentConfig& base_config() const { return base_; }

  /// The underlying session, for RunAll/RunSweep over the same World.
  const SimulationSession& session() const { return session_; }

  /// Runs one experiment on the prebuilt substrate. Only overlay,
  /// timing, policy, and workload-independent fields of `config` are
  /// honored; network and workload fields must match the base config.
  Result<ExperimentResult> Run(const ExperimentConfig& config) const;

  /// The RunSpec equivalent of a flat config's per-run fields.
  static RunSpec SpecFromConfig(const ExperimentConfig& config);

 private:
  Workbench(ExperimentConfig base, SimulationSession session)
      : base_(std::move(base)), session_(std::move(session)) {}

  ExperimentConfig base_;
  SimulationSession session_;
};

/// Convenience wrapper: builds a Workbench and runs once.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

}  // namespace d3t::exp

#endif  // D3T_EXP_EXPERIMENT_H_
