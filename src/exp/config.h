#ifndef D3T_EXP_CONFIG_H_
#define D3T_EXP_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/lela.h"

namespace d3t::exp {

/// Physical-network knobs: everything that shapes the topology and its
/// routed delay model. World-building input — immutable across the runs
/// of a session.
struct NetworkConfig {
  size_t repositories = 100;
  size_t routers = 600;
  /// Number of source nodes (paper base case: 1; §4's multi-source
  /// extension partitions the items round-robin across sources).
  size_t source_count = 1;
  /// Use Floyd-Warshall (paper-faithful) when true; Dijkstra rows
  /// restricted to overlay members otherwise (for large networks).
  /// Multi-source worlds always route with Dijkstra rows.
  bool use_floyd_warshall = true;
  /// Per-link Pareto delay parameters (milliseconds); see
  /// net::TopologyGeneratorOptions for the calibration note.
  double link_delay_min_ms = 1.5;
  double link_delay_mean_ms = 4.0;

  friend bool operator==(const NetworkConfig& a, const NetworkConfig& b) {
    return a.repositories == b.repositories && a.routers == b.routers &&
           a.source_count == b.source_count &&
           a.use_floyd_warshall == b.use_floyd_warshall &&
           a.link_delay_min_ms == b.link_delay_min_ms &&
           a.link_delay_mean_ms == b.link_delay_mean_ms;
  }
  friend bool operator!=(const NetworkConfig& a, const NetworkConfig& b) {
    return !(a == b);
  }
};

/// Workload knobs: the traces and the repositories' data needs.
/// World-building input — immutable across the runs of a session.
struct WorkloadConfig {
  size_t items = 100;
  size_t ticks = 10000;
  double item_probability = 0.5;
  /// The paper's T: fraction of a repository's items with stringent
  /// tolerances, in [0, 1].
  double stringent_fraction = 0.5;

  friend bool operator==(const WorkloadConfig& a, const WorkloadConfig& b) {
    return a.items == b.items && a.ticks == b.ticks &&
           a.item_probability == b.item_probability &&
           a.stringent_fraction == b.stringent_fraction;
  }
  friend bool operator!=(const WorkloadConfig& a, const WorkloadConfig& b) {
    return !(a == b);
  }
};

/// Overlay-construction knobs, applied per run (LeLA rebuilds the d3g
/// for every RunSpec; the substrate underneath stays shared).
struct OverlayConfig {
  /// Degree of cooperation *offered* by every member.
  size_t coop_degree = 5;
  /// When true, the effective degree is min(offered, Eq. (2) value).
  bool controlled_cooperation = false;
  /// Eq. (2)'s interest-fraction constant f.
  double coop_f = 50.0;
  double p_window = 0.05;
  core::PreferenceFunction preference = core::PreferenceFunction::kP1;
  core::InsertionOrder insertion_order =
      core::InsertionOrder::kStringentFirst;
};

/// Dissemination-policy and timing knobs, applied per run.
struct PolicyConfig {
  /// "distributed", "centralized", "eq3-only", "all-updates" or
  /// "temporal". Validated before any substrate work; see
  /// exp::ValidatePolicyName.
  std::string policy = "distributed";
  double comp_delay_ms = 12.5;
  /// When > 0, the pairwise delay matrix is rescaled so its mean equals
  /// this value (the x-axis of Figs. 5 and 7b). 0 keeps topology-native
  /// delays. Negative forces all-zero communication delays.
  double comm_delay_mean_ms = 0.0;
  /// See core::EngineOptions::tag_check_cost_factor.
  double tag_check_cost_factor = 0.0;
  /// See core::EngineOptions::coalesce_deliveries. Off = the
  /// one-event-per-message dispatch baseline; metrics are byte-identical
  /// either way.
  bool coalesce_deliveries = true;
  /// See core::EngineOptions::drain_process_spans. Off = the
  /// one-event-per-job processing baseline; metrics are byte-identical
  /// either way on routed topologies — including under a Scenario,
  /// where drained spans stop at the next pending scenario event so a
  /// mid-span failure sees the same backlog in both modes (see the
  /// caveat there about exact same-instant cross-parent arrivals on
  /// synthetic delay models; a scenario op landing on the exact
  /// microsecond a job chain ticks shares that caveat).
  bool drain_process_spans = true;
  /// Bind this run's lazy fidelity trackers to the World's change-
  /// timeline cache (built once at SessionBuilder::Build) instead of
  /// re-tracing the library per run. Results are identical either way;
  /// off exists for the rebuild baseline (bench/session_sweep.cc).
  bool use_cached_timelines = true;
  /// Serialize every inter-node update through the wire format over an
  /// in-process transport (see core::EngineOptions::wire_transport).
  /// Metrics are byte-identical either way, pinned by DeterminismTest;
  /// on = every message round-trips wire::Encode/Decode and the run's
  /// ExperimentResult carries the transport counters.
  bool route_through_wire = false;
  /// How orphaned subtrees re-attach when the run's Scenario fails a
  /// repository: "fallback" (the failed member's own parent, LeLA-style
  /// search when it is down too), "lela" (minimum-delay live holder) or
  /// "on-recovery" (wait for the original parent to come back). See
  /// core::ParseRepairPolicy; no effect without a scenario.
  std::string repair_policy = "fallback";
  /// Silence-detection window in milliseconds: how long orphans stay
  /// detached (integrating staleness) after their parent fails before
  /// the repair policy re-attaches them. 0 repairs at the failure
  /// instant.
  double repair_delay_ms = 0.0;
};

/// Legacy flat description of one simulation run, defaulted to the
/// paper's base case (§6.1). Kept as a compatibility shim: it is exactly
/// the four decomposed configs glued together (field access is
/// unchanged), and slicing to a base struct extracts the world-building
/// or per-run part, e.g. `NetworkConfig net = config;`. New code should
/// prefer SessionBuilder + RunSpec (exp/session.h).
struct ExperimentConfig : NetworkConfig,
                          WorkloadConfig,
                          OverlayConfig,
                          PolicyConfig {
  uint64_t seed = 42;
};

}  // namespace d3t::exp

#endif  // D3T_EXP_CONFIG_H_
