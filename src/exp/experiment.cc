#include "exp/experiment.h"

#include <algorithm>

#include "core/coop_degree.h"
#include "core/interest.h"
#include "net/routing.h"
#include "net/topology_generator.h"
#include "trace/synthetic.h"

namespace d3t::exp {

Result<Workbench> Workbench::Create(const ExperimentConfig& config) {
  if (config.repositories == 0 || config.items == 0 || config.ticks < 2) {
    return Status::InvalidArgument(
        "need >=1 repository, >=1 item and >=2 ticks");
  }
  Rng master(config.seed);
  Rng topo_rng = master.Fork(1);
  Rng trace_rng = master.Fork(2);
  Rng interest_rng = master.Fork(3);

  net::TopologyGeneratorOptions topo_options;
  topo_options.router_count = config.routers;
  topo_options.repository_count = config.repositories;
  Result<net::Topology> topo = net::GenerateTopology(topo_options, topo_rng);
  if (!topo.ok()) return topo.status();

  Result<net::OverlayDelayModel> delays = [&]() {
    if (config.use_floyd_warshall) {
      Result<net::RoutingTables> routing =
          net::RoutingTables::FloydWarshall(*topo);
      if (!routing.ok()) return Result<net::OverlayDelayModel>(routing.status());
      return net::OverlayDelayModel::FromRouting(*topo, *routing);
    }
    std::vector<net::NodeId> rows;
    rows.push_back(topo->SourceNode());
    for (net::NodeId repo : topo->RepositoryNodes()) rows.push_back(repo);
    Result<net::RoutingTables> routing =
        net::RoutingTables::DijkstraRows(*topo, rows);
    if (!routing.ok()) return Result<net::OverlayDelayModel>(routing.status());
    return net::OverlayDelayModel::FromRouting(*topo, *routing);
  }();
  if (!delays.ok()) return delays.status();

  std::vector<trace::Trace> traces =
      trace::BuildTraceLibrary(config.items, config.ticks, trace_rng);
  if (traces.size() != config.items) {
    return Status::Internal("trace library generation failed");
  }

  core::InterestOptions interest_options;
  interest_options.repository_count = config.repositories;
  interest_options.item_count = config.items;
  interest_options.item_probability = config.item_probability;
  interest_options.stringent_fraction = config.stringent_fraction;
  std::vector<core::InterestSet> interests =
      core::GenerateInterests(interest_options, interest_rng);

  return Workbench(config, std::move(delays).value(), std::move(traces),
                   std::move(interests));
}

Result<ExperimentResult> Workbench::Run(const ExperimentConfig& config) const {
  if (config.repositories != base_.repositories ||
      config.items != base_.items || config.ticks != base_.ticks) {
    return Status::InvalidArgument(
        "network/workload fields differ from the workbench base config");
  }

  // Communication-delay scaling (Figs. 5 and 7b sweep the mean delay).
  net::OverlayDelayModel delays = delays_;
  if (config.comm_delay_mean_ms > 0.0) {
    delays = delays.ScaledToMeanDelay(sim::Millis(config.comm_delay_mean_ms));
  } else if (config.comm_delay_mean_ms < 0.0) {
    delays = delays.ScaledToMeanDelay(0);
  }

  ExperimentResult result;
  result.mean_pair_delay_ms = delays.PairDelayStats().mean() / 1000.0;
  result.mean_pair_hops = delays.MeanPairHops();

  // Effective cooperation degree.
  size_t degree = std::max<size_t>(1, config.coop_degree);
  if (config.controlled_cooperation) {
    core::CoopDegreeInputs inputs;
    inputs.avg_comm_delay =
        static_cast<sim::SimTime>(delays.PairDelayStats().mean());
    inputs.avg_comp_delay = sim::Millis(config.comp_delay_ms);
    inputs.f = config.coop_f;
    inputs.max_resources = config.repositories;
    degree = std::min(degree, core::ComputeCooperationDegree(inputs));
  }
  result.effective_degree = degree;

  core::LelaOptions lela_options;
  lela_options.coop_degree = degree;
  lela_options.p_window = config.p_window;
  lela_options.preference = config.preference;
  lela_options.insertion_order = config.insertion_order;
  Rng lela_rng = Rng(config.seed).Fork(4);
  Result<core::LelaResult> built = core::BuildOverlay(
      delays, interests_, config.items, lela_options, lela_rng);
  if (!built.ok()) return built.status();
  // Defense in depth: never simulate on a malformed overlay.
  D3T_RETURN_IF_ERROR(built->overlay.Validate(degree));
  result.build_info = built->info;
  result.shape = built->overlay.ComputeShape();

  std::unique_ptr<core::Disseminator> policy =
      core::MakeDisseminator(config.policy);
  if (policy == nullptr) {
    return Status::InvalidArgument("unknown policy: " + config.policy);
  }

  core::EngineOptions engine_options;
  engine_options.comp_delay = sim::Millis(config.comp_delay_ms);
  engine_options.tag_check_cost_factor = config.tag_check_cost_factor;
  core::Engine engine(built->overlay, delays, traces_, *policy,
                      engine_options);
  Result<core::EngineMetrics> metrics = engine.Run();
  if (!metrics.ok()) return metrics.status();
  result.metrics = std::move(metrics).value();
  return result;
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  Result<Workbench> bench = Workbench::Create(config);
  if (!bench.ok()) return bench.status();
  return bench->Run(config);
}

}  // namespace d3t::exp
