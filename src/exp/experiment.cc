#include "exp/experiment.h"

namespace d3t::exp {

RunSpec Workbench::SpecFromConfig(const ExperimentConfig& config) {
  RunSpec spec;
  spec.overlay = config;  // slice to the OverlayConfig base
  spec.policy = config;   // slice to the PolicyConfig base
  spec.seed = config.seed;
  return spec;
}

Result<Workbench> Workbench::Create(const ExperimentConfig& config) {
  D3T_RETURN_IF_ERROR(ValidatePolicyName(config.policy));
  if (config.source_count != 1) {
    return Status::InvalidArgument(
        "a Workbench is single-source (the paper's base case); use "
        "SessionBuilder or RunMultiSource for multi-source worlds");
  }
  SessionBuilder builder;
  builder.SetNetwork(config)
      .SetWorkload(config)
      .SetSeed(config.seed);
  Result<SimulationSession> session = builder.Build();
  if (!session.ok()) return session.status();
  return Workbench(config, std::move(session).value());
}

Result<ExperimentResult> Workbench::Run(const ExperimentConfig& config) const {
  // Compare the full world-building slices: any NetworkConfig or
  // WorkloadConfig field changed per run would be silently ignored
  // (the World is already built), so reject instead.
  if (static_cast<const NetworkConfig&>(config) !=
          static_cast<const NetworkConfig&>(base_) ||
      static_cast<const WorkloadConfig&>(config) !=
          static_cast<const WorkloadConfig&>(base_)) {
    return Status::InvalidArgument(
        "network/workload fields differ from the workbench base config");
  }
  return session_.Run(SpecFromConfig(config));
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  Result<Workbench> bench = Workbench::Create(config);
  if (!bench.ok()) return bench.status();
  return bench->Run(config);
}

}  // namespace d3t::exp
