#include "exp/multi_source.h"

#include <algorithm>

#include "core/lela.h"
#include "net/routing.h"
#include "net/topology_generator.h"
#include "trace/synthetic.h"

namespace d3t::exp {

Result<MultiSourceResult> RunMultiSource(const MultiSourceConfig& config) {
  const ExperimentConfig& base = config.base;
  if (config.source_count == 0) {
    return Status::InvalidArgument("need at least one source");
  }
  if (base.repositories == 0 || base.items == 0 || base.ticks < 2) {
    return Status::InvalidArgument(
        "need >=1 repository, >=1 item and >=2 ticks");
  }

  Rng master(base.seed);
  Rng topo_rng = master.Fork(1);
  Rng trace_rng = master.Fork(2);
  Rng interest_rng = master.Fork(3);

  net::TopologyGeneratorOptions topo_options;
  topo_options.router_count = base.routers;
  topo_options.repository_count = base.repositories;
  topo_options.source_count = config.source_count;
  Result<net::Topology> topo = net::GenerateTopology(topo_options, topo_rng);
  if (!topo.ok()) return topo.status();

  // Route once from every source and repository (Dijkstra scales to the
  // multi-source node counts).
  std::vector<net::NodeId> rows = topo->SourceNodes();
  for (net::NodeId repo : topo->RepositoryNodes()) rows.push_back(repo);
  Result<net::RoutingTables> routing =
      net::RoutingTables::DijkstraRows(*topo, rows);
  if (!routing.ok()) return routing.status();

  std::vector<trace::Trace> traces =
      trace::BuildTraceLibrary(base.items, base.ticks, trace_rng);

  core::InterestOptions interest_options;
  interest_options.repository_count = base.repositories;
  interest_options.item_count = base.items;
  interest_options.item_probability = base.item_probability;
  interest_options.stringent_fraction = base.stringent_fraction;
  std::vector<core::InterestSet> interests =
      core::GenerateInterests(interest_options, interest_rng);

  MultiSourceResult result;
  result.per_source.resize(config.source_count);
  double pair_loss_weighted = 0.0;
  uint64_t total_pairs = 0;

  const std::vector<net::NodeId> sources = topo->SourceNodes();
  for (size_t s = 0; s < config.source_count; ++s) {
    Result<net::OverlayDelayModel> delays =
        net::OverlayDelayModel::FromRoutingWithSource(*topo, *routing,
                                                      sources[s]);
    if (!delays.ok()) return delays.status();

    // This source owns the items congruent to s (round-robin
    // partition); repositories' needs are restricted accordingly.
    std::vector<core::InterestSet> owned(interests.size());
    size_t owned_items = 0;
    for (size_t i = 0; i < interests.size(); ++i) {
      for (const auto& [item, c] : interests[i]) {
        if (item % config.source_count == s) owned[i].emplace(item, c);
      }
    }
    for (core::ItemId item = 0; item < base.items; ++item) {
      if (item % config.source_count == s) ++owned_items;
    }

    core::LelaOptions lela;
    lela.coop_degree = std::max<size_t>(1, base.coop_degree);
    lela.p_window = base.p_window;
    lela.preference = base.preference;
    lela.insertion_order = base.insertion_order;
    Rng lela_rng = Rng(base.seed).Fork(100 + s);
    Result<core::LelaResult> built =
        core::BuildOverlay(*delays, owned, base.items, lela, lela_rng);
    if (!built.ok()) return built.status();

    std::unique_ptr<core::Disseminator> policy =
        core::MakeDisseminator(base.policy);
    if (policy == nullptr) {
      return Status::InvalidArgument("unknown policy: " + base.policy);
    }
    core::EngineOptions engine_options;
    engine_options.comp_delay = sim::Millis(base.comp_delay_ms);
    core::Engine engine(built->overlay, *delays, traces, *policy,
                        engine_options);
    Result<core::EngineMetrics> metrics = engine.Run();
    if (!metrics.ok()) return metrics.status();

    SourceSlice& slice = result.per_source[s];
    slice.items = owned_items;
    slice.messages = metrics->messages;
    slice.source_checks = metrics->source_checks;
    slice.pair_loss_percent = metrics->pair_loss_percent;
    slice.tracked_pairs = metrics->tracked_pairs;

    result.messages += metrics->messages;
    result.checks += metrics->checks;
    result.max_source_checks =
        std::max(result.max_source_checks, metrics->source_checks);
    pair_loss_weighted += metrics->pair_loss_percent *
                          static_cast<double>(metrics->tracked_pairs);
    total_pairs += metrics->tracked_pairs;
  }
  result.loss_percent =
      total_pairs > 0 ? pair_loss_weighted / static_cast<double>(total_pairs)
                      : 0.0;
  return result;
}

}  // namespace d3t::exp
