#include "exp/multi_source.h"

#include <algorithm>

namespace d3t::exp {

std::vector<RunSpec> MultiSourceSpecs(const ExperimentConfig& base,
                                      size_t source_count) {
  std::vector<RunSpec> specs(source_count);
  for (size_t s = 0; s < source_count; ++s) {
    RunSpec& spec = specs[s];
    spec.overlay = base;
    spec.policy = base;
    spec.source_index = s;
    // Each shard gets its own stream: deriving every source's overlay
    // randomness from the one base seed would correlate the shards.
    spec.seed = PerSourceSeed(base.seed, s);
    spec.label = "source " + std::to_string(s);
  }
  return specs;
}

Result<MultiSourceResult> RunMultiSource(const MultiSourceConfig& config) {
  const ExperimentConfig& base = config.base;
  if (config.source_count == 0) {
    return Status::InvalidArgument("need at least one source");
  }
  // Fail fast on a bad policy name — before the World is built.
  D3T_RETURN_IF_ERROR(ValidatePolicyName(base.policy));

  NetworkConfig network = base;
  network.source_count = config.source_count;
  SessionBuilder builder;
  builder.SetNetwork(network)
      .SetWorkload(base)
      .SetSeed(base.seed)
      .SetWorkerThreads(config.worker_threads);
  Result<SimulationSession> session = builder.Build();
  if (!session.ok()) return session.status();

  const std::vector<RunSpec> specs =
      MultiSourceSpecs(base, config.source_count);
  const std::vector<Result<ExperimentResult>> runs = session->RunAll(specs);

  MultiSourceResult result;
  result.per_source.resize(config.source_count);
  double pair_loss_weighted = 0.0;
  uint64_t total_pairs = 0;
  for (size_t s = 0; s < runs.size(); ++s) {
    if (!runs[s].ok()) return runs[s].status();
    const core::EngineMetrics& metrics = runs[s]->metrics;

    SourceSlice& slice = result.per_source[s];
    slice.items = session->world().OwnedItemCount(s);
    slice.messages = metrics.messages;
    slice.source_checks = metrics.source_checks;
    slice.pair_loss_percent = metrics.pair_loss_percent;
    slice.tracked_pairs = metrics.tracked_pairs;

    result.messages += metrics.messages;
    result.checks += metrics.checks;
    result.max_source_checks =
        std::max(result.max_source_checks, metrics.source_checks);
    pair_loss_weighted += metrics.pair_loss_percent *
                          static_cast<double>(metrics.tracked_pairs);
    total_pairs += metrics.tracked_pairs;
  }
  result.loss_percent =
      total_pairs > 0 ? pair_loss_weighted / static_cast<double>(total_pairs)
                      : 0.0;
  return result;
}

}  // namespace d3t::exp
