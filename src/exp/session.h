#ifndef D3T_EXP_SESSION_H_
#define D3T_EXP_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/interest.h"
#include "core/lela.h"
#include "core/scenario.h"
#include "exp/config.h"
#include "net/delay_model.h"
#include "net/transport.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "trace/trace.h"

namespace d3t::exp {

/// Everything a run reports.
struct ExperimentResult {
  core::EngineMetrics metrics;
  core::OverlayShape shape;
  core::LelaBuildInfo build_info;
  /// Degree actually enforced (after controlled cooperation).
  size_t effective_degree = 0;
  /// Mean repository-to-repository delay of the (possibly rescaled)
  /// delay model, in ms, and the mean physical hop count.
  double mean_pair_delay_ms = 0.0;
  double mean_pair_hops = 0.0;
  /// Wire-transport counters of the run (all zero unless
  /// PolicyConfig::route_through_wire was set; then frames_tx equals
  /// the engine's message count — every push crossed the wire).
  net::TransportMetrics wire;
};

/// One run against a prebuilt World: which source roots the overlay, how
/// LeLA shapes it, which policy disseminates, and the RNG stream that
/// breaks LeLA's random choices. Cheap to copy and mutate — sweeps are
/// vectors of these.
struct RunSpec {
  OverlayConfig overlay;
  PolicyConfig policy;
  /// Scripted mid-run dynamics (repository failures/recoveries,
  /// interest churn, coherency renegotiation), applied to this run's
  /// overlay through the typed event kernel. Empty (the default) is the
  /// static-world baseline and reproduces scenario-free metrics
  /// byte-identically. Build one with exp::ScenarioBuilder or
  /// exp::MakeChurnScenario (exp/scenario.h).
  core::Scenario scenario;
  /// Explicit per-run RNG seed. Runs of a sweep may share it (vary one
  /// knob, hold the randomness fixed); sharded multi-source runs must
  /// not (see PerSourceSeed).
  uint64_t seed = 42;
  /// Which of the world's sources roots this run's dissemination graph.
  /// In a multi-source world the run serves only the items owned by that
  /// source (round-robin partition).
  size_t source_index = 0;
  /// Free-form tag echoed back by reports; unused by the runner.
  std::string label;
  /// Optional observability taps, forwarded into EngineOptions (both
  /// may be null; must outlive the run). NOTE: a RunSpec carrying these
  /// is bound to one run — RunAll executes specs concurrently, and the
  /// obs objects are single-threaded, so sweep specs must either leave
  /// them null or give every spec its own recorder/registry pair.
  obs::Recorder* recorder = nullptr;
  obs::Registry* registry = nullptr;
};

/// Immutable, sweep-invariant substrate: the routed topology's delay
/// model(s), the trace library and the interest sets. Built once by
/// SessionBuilder and shared (read-only) by every run of a session —
/// including runs executing concurrently on worker threads.
class World {
 public:
  const NetworkConfig& network() const { return network_; }
  const WorkloadConfig& workload() const { return workload_; }
  uint64_t seed() const { return seed_; }
  size_t source_count() const { return delays_.size(); }

  /// Delay model rooted at source `source_index` (all models share the
  /// repository set; member 0 is the chosen source).
  const net::OverlayDelayModel& delays(size_t source_index = 0) const {
    return delays_[source_index];
  }
  /// Off-diagonal pair-delay stats and mean pair hops of
  /// delays(source_index), computed once at Build. World-invariant, so
  /// runs do not rescan the O(member^2) matrix per sweep point; a run
  /// that rescales the delay model recomputes delay stats from its
  /// scaled copy (hops are never rescaled).
  const StreamingStats& pair_delay_stats(size_t source_index = 0) const {
    return pair_delay_stats_[source_index];
  }
  double mean_pair_hops(size_t source_index = 0) const {
    return mean_pair_hops_[source_index];
  }
  const std::vector<trace::Trace>& traces() const { return traces_; }
  /// Per-item compacted change timelines of traces(), built exactly once
  /// at SessionBuilder::Build. Engines bind their lazy fidelity trackers
  /// to these views (RunSpecs with use_cached_timelines, the default),
  /// so a sweep never re-traces the library per run.
  const core::ChangeTimelines& change_timelines() const {
    return change_timelines_;
  }
  const std::vector<core::InterestSet>& interests() const {
    return interests_;
  }

  /// Interests restricted to the items owned by `source_index`
  /// (round-robin partition). Equals interests() for single-source
  /// worlds.
  std::vector<core::InterestSet> OwnedInterests(size_t source_index) const;
  /// Number of items owned by `source_index`.
  size_t OwnedItemCount(size_t source_index) const;

  /// Process-wide count of World builds — a test/diagnostic hook for
  /// asserting that sweeps share one World instead of rebuilding the
  /// substrate per point.
  static uint64_t BuildCount();

 private:
  friend class SessionBuilder;
  World() = default;

  NetworkConfig network_;
  WorkloadConfig workload_;
  uint64_t seed_ = 0;
  std::vector<net::OverlayDelayModel> delays_;
  std::vector<StreamingStats> pair_delay_stats_;
  std::vector<double> mean_pair_hops_;
  std::vector<trace::Trace> traces_;
  core::ChangeTimelines change_timelines_;
  std::vector<core::InterestSet> interests_;
};

/// Executes RunSpecs against a shared World. Copying a session is cheap
/// (the World is shared and immutable). Run() is const and thread-safe;
/// RunAll() fans independent specs out over a worker pool and still
/// returns results in spec order, so aggregation is deterministic no
/// matter how the pool schedules them.
class SimulationSession {
 public:
  const World& world() const { return *world_; }

  /// Worker threads RunAll may use (1 forces serial in-place execution).
  size_t worker_threads() const { return worker_threads_; }

  /// Executes one run. Validates the spec (policy name, source index)
  /// before any expensive work.
  Result<ExperimentResult> Run(const RunSpec& spec) const;

  /// Executes every spec against the shared World — on the worker pool
  /// when more than one spec and more than one worker thread are
  /// available. results[i] always corresponds to specs[i].
  std::vector<Result<ExperimentResult>> RunAll(
      const std::vector<RunSpec>& specs) const;

  /// Sweep helper: copies `base` once per value, lets `apply(spec,
  /// value)` set the swept knob, and RunAll()s the points against the
  /// one shared World. Fig. 5/7/11-style curves are a single call:
  ///
  ///   auto curve = session.RunSweep(base, policies,
  ///       [](RunSpec& s, const std::string& p) { s.policy.policy = p; });
  template <typename T, typename Apply>
  std::vector<Result<ExperimentResult>> RunSweep(const RunSpec& base,
                                                 const std::vector<T>& values,
                                                 Apply&& apply) const {
    std::vector<RunSpec> specs;
    specs.reserve(values.size());
    for (const T& value : values) {
      RunSpec spec = base;
      apply(spec, value);
      specs.push_back(std::move(spec));
    }
    return RunAll(specs);
  }

 private:
  friend class SessionBuilder;
  SimulationSession(std::shared_ptr<const World> world,
                    size_t worker_threads)
      : world_(std::move(world)), worker_threads_(worker_threads) {}

  std::shared_ptr<const World> world_;
  size_t worker_threads_ = 0;
};

/// Stage one of the session API: collects the world-building inputs
/// (network, workload, seed) and builds the immutable World exactly
/// once. Custom workloads can override the generated interests and/or
/// traces (e.g. client-derived needs, replayed sensor logs).
class SessionBuilder {
 public:
  SessionBuilder& SetNetwork(const NetworkConfig& network) {
    network_ = network;
    return *this;
  }
  SessionBuilder& SetWorkload(const WorkloadConfig& workload) {
    workload_ = workload;
    return *this;
  }
  SessionBuilder& SetSeed(uint64_t seed) {
    seed_ = seed;
    return *this;
  }
  /// Worker threads for RunAll (0 = one per hardware thread; 1 = serial).
  SessionBuilder& SetWorkerThreads(size_t worker_threads) {
    worker_threads_ = worker_threads;
    return *this;
  }
  /// Replaces the generated interest sets (must have one entry per
  /// repository).
  SessionBuilder& SetInterests(std::vector<core::InterestSet> interests) {
    interests_override_ = std::move(interests);
    has_interests_ = true;
    return *this;
  }
  /// Replaces the generated trace library (must have one non-empty trace
  /// per item).
  SessionBuilder& SetTraces(std::vector<trace::Trace> traces) {
    traces_override_ = std::move(traces);
    has_traces_ = true;
    return *this;
  }

  /// Builds the World (topology → routing → delay models, traces,
  /// interests) and wraps it in a session. The expensive call: everything
  /// after it is per-run work. The rvalue overload moves any SetTraces /
  /// SetInterests overrides into the World instead of copying them —
  /// use `std::move(builder).Build()` for large replayed workloads.
  Result<SimulationSession> Build() const&;
  Result<SimulationSession> Build() &&;

 private:
  Result<SimulationSession> BuildInternal(
      std::vector<core::InterestSet> interests,
      std::vector<trace::Trace> traces) const;

  NetworkConfig network_;
  WorkloadConfig workload_;
  uint64_t seed_ = 42;
  size_t worker_threads_ = 0;
  std::vector<core::InterestSet> interests_override_;
  std::vector<trace::Trace> traces_override_;
  bool has_interests_ = false;
  bool has_traces_ = false;
};

/// Submission order RunAll uses when fanning specs out to the worker
/// pool: indices of `specs` sorted longest-estimated-run-first (ticks x
/// cooperation-degree heuristic), ties broken by original index.
/// Results always come back in spec order regardless; exposed so the
/// scheduling policy itself is testable.
std::vector<size_t> LongestFirstOrder(const std::vector<RunSpec>& specs,
                                      const WorkloadConfig& workload);

/// OK iff `name` is a policy core::MakeDisseminator knows; the error
/// lists the known policy names.
Status ValidatePolicyName(const std::string& name);

/// Deterministic per-source run seed: decorrelates the RNG streams of
/// sharded multi-source runs that share one base seed.
uint64_t PerSourceSeed(uint64_t base_seed, size_t source_index);

}  // namespace d3t::exp

#endif  // D3T_EXP_SESSION_H_
