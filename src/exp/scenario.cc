#include "exp/scenario.h"

#include <algorithm>
#include <utility>

#include "common/random.h"

namespace d3t::exp {

using core::ScenarioOp;
using core::ScenarioOpKind;

ScenarioBuilder& ScenarioBuilder::FailRepo(sim::SimTime at,
                                           core::OverlayIndex member) {
  ScenarioOp op;
  op.at = at;
  op.kind = ScenarioOpKind::kRepoFail;
  op.member = member;
  ops_.push_back(op);
  last_failed_ = member;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::RecoverAt(sim::SimTime at) {
  if (last_failed_ == core::kInvalidOverlayIndex) {
    // No FailRepo to chain off; remembered and surfaced at Build().
    dangling_recover_ = true;
    return *this;
  }
  return RecoverRepo(at, last_failed_);
}

ScenarioBuilder& ScenarioBuilder::RecoverRepo(sim::SimTime at,
                                              core::OverlayIndex member) {
  ScenarioOp op;
  op.at = at;
  op.kind = ScenarioOpKind::kRepoRecover;
  op.member = member;
  ops_.push_back(op);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::JoinInterest(sim::SimTime at,
                                               core::OverlayIndex member,
                                               core::ItemId item,
                                               core::Coherency c) {
  ScenarioOp op;
  op.at = at;
  op.kind = ScenarioOpKind::kInterestJoin;
  op.member = member;
  op.item = item;
  op.c = c;
  ops_.push_back(op);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::LeaveInterest(sim::SimTime at,
                                                core::OverlayIndex member,
                                                core::ItemId item) {
  ScenarioOp op;
  op.at = at;
  op.kind = ScenarioOpKind::kInterestLeave;
  op.member = member;
  op.item = item;
  ops_.push_back(op);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ChangeCoherency(sim::SimTime at,
                                                  core::OverlayIndex member,
                                                  core::ItemId item,
                                                  core::Coherency c) {
  ScenarioOp op;
  op.at = at;
  op.kind = ScenarioOpKind::kCoherencyChange;
  op.member = member;
  op.item = item;
  op.c = c;
  ops_.push_back(op);
  return *this;
}

Result<core::Scenario> ScenarioBuilder::Build() const {
  if (dangling_recover_) {
    return Status::FailedPrecondition(
        "RecoverAt called before any FailRepo");
  }
  return core::Scenario::Create(ops_);
}

Result<core::Scenario> MakeChurnScenario(const ChurnOptions& options) {
  if (options.repositories == 0) {
    return Status::InvalidArgument("churn needs at least one repository");
  }
  if (options.horizon <= 0) {
    return Status::InvalidArgument("churn needs a positive horizon");
  }
  if (!(options.min_outage_fraction > 0.0) ||
      options.max_outage_fraction < options.min_outage_fraction ||
      options.max_outage_fraction >= 1.0) {
    return Status::InvalidArgument(
        "need 0 < min_outage_fraction <= max_outage_fraction < 1");
  }

  // Decorrelated stream, PerSourceSeed-style: mix the base seed with a
  // subsystem constant through SplitMix64 so churn randomness never
  // collides with the Fork() stream family other consumers of the same
  // seed draw from.
  uint64_t state =
      options.seed ^ 0xc2b2ae3d27d4eb4fULL;  // churn subsystem salt
  Rng rng(SplitMix64(state));

  // Per-repository outage intervals already placed, to keep one
  // repository's episodes disjoint (a double-fail is an invalid script).
  std::vector<std::vector<std::pair<sim::SimTime, sim::SimTime>>> busy(
      options.repositories + 1);
  ScenarioBuilder builder;
  const double h = static_cast<double>(options.horizon);
  size_t placed = 0;
  // Bounded rejection sampling: an episode landing on an already-down
  // repository window is redrawn; pathological option combinations end
  // with fewer episodes rather than looping forever.
  for (size_t attempt = 0;
       attempt < options.failures * 16 && placed < options.failures;
       ++attempt) {
    const core::OverlayIndex member = static_cast<core::OverlayIndex>(
        1 + rng.NextBounded(options.repositories));
    const double fraction = rng.NextDoubleInRange(
        options.min_outage_fraction, options.max_outage_fraction);
    const sim::SimTime duration =
        std::max<sim::SimTime>(1, static_cast<sim::SimTime>(fraction * h));
    if (duration >= options.horizon) continue;
    const sim::SimTime start = static_cast<sim::SimTime>(rng.NextBounded(
        static_cast<uint64_t>(options.horizon - duration)));
    const sim::SimTime end = start + duration;
    bool overlaps = false;
    for (const auto& [s, e] : busy[member]) {
      if (start <= e && s <= end) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    busy[member].emplace_back(start, end);
    builder.FailRepo(start, member).RecoverAt(end);
    ++placed;
  }
  if (placed == 0) {
    return Status::FailedPrecondition(
        "churn options could not place any outage episode");
  }
  return builder.Build();
}

}  // namespace d3t::exp
