#include "exp/session.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <optional>

#include "common/thread_pool.h"
#include "core/coop_degree.h"
#include "core/disseminator.h"
#include "net/routing.h"
#include "net/topology_generator.h"
#include "trace/synthetic.h"

namespace d3t::exp {
namespace {

std::atomic<uint64_t> g_world_build_count{0};

Status ValidateRunSpec(const World& world, const RunSpec& spec) {
  D3T_RETURN_IF_ERROR(ValidatePolicyName(spec.policy.policy));
  if (spec.source_index >= world.source_count()) {
    return Status::InvalidArgument(
        "source_index " + std::to_string(spec.source_index) +
        " out of range: the world has " +
        std::to_string(world.source_count()) + " source(s)");
  }
  D3T_RETURN_IF_ERROR(
      core::ParseRepairPolicy(spec.policy.repair_policy).status());
  if (spec.policy.repair_delay_ms < 0.0) {
    return Status::InvalidArgument("repair_delay_ms must be >= 0");
  }
  // Member 0 is the source; repositories are members 1..N.
  D3T_RETURN_IF_ERROR(spec.scenario.ValidateAgainst(
      world.network().repositories + 1, world.workload().items));
  return Status::Ok();
}

}  // namespace

Status ValidatePolicyName(const std::string& name) {
  const std::vector<std::string>& known = core::KnownPolicyNames();
  if (std::find(known.begin(), known.end(), name) != known.end()) {
    return Status::Ok();
  }
  std::string message = "unknown policy '" + name + "'; known policies:";
  for (const std::string& policy : known) message += " " + policy;
  return Status::InvalidArgument(message);
}

uint64_t PerSourceSeed(uint64_t base_seed, size_t source_index) {
  // golden-ratio-unrelated odd constant so PerSourceSeed(s, i) never
  // collides with the Fork() stream family derived from the same seed.
  uint64_t state =
      base_seed ^
      (0xd1b54a32d192ed03ULL * (static_cast<uint64_t>(source_index) + 1));
  return SplitMix64(state);
}

uint64_t World::BuildCount() {
  return g_world_build_count.load(std::memory_order_relaxed);
}

std::vector<core::InterestSet> World::OwnedInterests(
    size_t source_index) const {
  if (source_count() == 1) return interests_;
  std::vector<core::InterestSet> owned(interests_.size());
  for (size_t i = 0; i < interests_.size(); ++i) {
    for (const auto& [item, c] : interests_[i]) {
      if (item % source_count() == source_index) owned[i].emplace(item, c);
    }
  }
  return owned;
}

size_t World::OwnedItemCount(size_t source_index) const {
  const size_t sources = source_count();
  size_t count = 0;
  for (size_t item = 0; item < workload_.items; ++item) {
    if (item % sources == source_index) ++count;
  }
  return count;
}

Result<SimulationSession> SessionBuilder::Build() const& {
  return BuildInternal(interests_override_, traces_override_);
}

Result<SimulationSession> SessionBuilder::Build() && {
  return BuildInternal(std::move(interests_override_),
                       std::move(traces_override_));
}

Result<SimulationSession> SessionBuilder::BuildInternal(
    std::vector<core::InterestSet> interests,
    std::vector<trace::Trace> traces) const {
  if (network_.repositories == 0 || workload_.items == 0 ||
      workload_.ticks < 2) {
    return Status::InvalidArgument(
        "need >=1 repository, >=1 item and >=2 ticks");
  }
  if (network_.source_count == 0) {
    return Status::InvalidArgument("need at least one source");
  }
  if (has_interests_ && interests.size() != network_.repositories) {
    return Status::InvalidArgument(
        "interest override must cover every repository");
  }
  if (has_traces_) {
    if (traces.size() != workload_.items) {
      return Status::InvalidArgument(
          "trace override must supply one trace per item");
    }
    for (const trace::Trace& trace : traces) {
      if (trace.empty()) {
        return Status::InvalidArgument("trace override contains an empty "
                                       "trace");
      }
    }
  }

  // Stream assignment is part of the public contract: reproducing the
  // historical Workbench streams keeps golden metrics byte-identical.
  Rng master(seed_);
  Rng topo_rng = master.Fork(1);
  Rng trace_rng = master.Fork(2);
  Rng interest_rng = master.Fork(3);

  net::TopologyGeneratorOptions topo_options;
  topo_options.router_count = network_.routers;
  topo_options.repository_count = network_.repositories;
  topo_options.source_count = network_.source_count;
  topo_options.link_delay_min_ms = network_.link_delay_min_ms;
  topo_options.link_delay_mean_ms = network_.link_delay_mean_ms;
  Result<net::Topology> topo = net::GenerateTopology(topo_options, topo_rng);
  if (!topo.ok()) return topo.status();

  auto world = std::shared_ptr<World>(new World());
  world->network_ = network_;
  world->workload_ = workload_;
  world->seed_ = seed_;

  if (network_.source_count == 1 && network_.use_floyd_warshall) {
    // Paper-faithful small-network path: full Floyd-Warshall APSP.
    Result<net::RoutingTables> routing =
        net::RoutingTables::FloydWarshall(*topo);
    if (!routing.ok()) return routing.status();
    Result<net::OverlayDelayModel> delays =
        net::OverlayDelayModel::FromRouting(*topo, *routing);
    if (!delays.ok()) return delays.status();
    world->delays_.push_back(std::move(delays).value());
  } else {
    // Large and multi-source worlds: stream one Dijkstra row per member
    // straight into the compressed member-indexed model(s) — no routing
    // table over physical nodes is ever materialized, which is what
    // keeps 10k-repository worlds memory-bounded. Rows are independent,
    // so the build fans out over the session's worker budget.
    const size_t build_threads = worker_threads_ == 0
                                     ? ThreadPool::DefaultThreadCount()
                                     : worker_threads_;
    Result<std::vector<net::OverlayDelayModel>> delays =
        net::OverlayDelayModel::FromTopologyAllSources(*topo, build_threads);
    if (!delays.ok()) return delays.status();
    world->delays_ = std::move(delays).value();
  }

  if (has_traces_) {
    world->traces_ = std::move(traces);
  } else {
    world->traces_ =
        trace::BuildTraceLibrary(workload_.items, workload_.ticks, trace_rng);
    if (world->traces_.size() != workload_.items) {
      return Status::Internal("trace library generation failed");
    }
  }

  // Pair statistics of each delay model are World-invariant; computing
  // them here spares every run its own O(member^2) matrix scans (three
  // per run before — two delay passes plus hops — which at 10k
  // repositories is ~300M accumulator adds per sweep point).
  for (const net::OverlayDelayModel& delays : world->delays_) {
    world->pair_delay_stats_.push_back(delays.PairDelayStats());
    world->mean_pair_hops_.push_back(delays.MeanPairHops());
  }

  // Compacted per-item change timelines are trace-invariant, so one copy
  // built here serves every run of the session (the engines' lazy
  // trackers bind read-only views; see PolicyConfig::use_cached_
  // timelines).
  world->change_timelines_ = core::BuildChangeTimelines(world->traces_);

  if (has_interests_) {
    world->interests_ = std::move(interests);
  } else {
    core::InterestOptions interest_options;
    interest_options.repository_count = network_.repositories;
    interest_options.item_count = workload_.items;
    interest_options.item_probability = workload_.item_probability;
    interest_options.stringent_fraction = workload_.stringent_fraction;
    world->interests_ =
        core::GenerateInterests(interest_options, interest_rng);
  }

  g_world_build_count.fetch_add(1, std::memory_order_relaxed);
  return SimulationSession(std::move(world), worker_threads_);
}

Result<ExperimentResult> SimulationSession::Run(const RunSpec& spec) const {
  const World& world = *world_;
  D3T_RETURN_IF_ERROR(ValidateRunSpec(world, spec));

  // Communication-delay scaling (Figs. 5 and 7b sweep the mean delay).
  // The world's model is only copied when a rescale actually asks for
  // one — at 10k repositories the member matrix is ~600 MiB, so an
  // unconditional per-run copy would double peak RSS and burn a large
  // memcpy per sweep point.
  const net::OverlayDelayModel* delays_ptr = &world.delays(spec.source_index);
  std::optional<net::OverlayDelayModel> scaled;
  if (spec.policy.comm_delay_mean_ms > 0.0) {
    scaled = delays_ptr->ScaledToMeanDelay(
        sim::Millis(spec.policy.comm_delay_mean_ms));
    delays_ptr = &*scaled;
  } else if (spec.policy.comm_delay_mean_ms < 0.0) {
    scaled = delays_ptr->ScaledToMeanDelay(0);
    delays_ptr = &*scaled;
  }
  const net::OverlayDelayModel& delays = *delays_ptr;

  // Pair stats come from the World's cache unless this run rescaled the
  // delay model (hops are never rescaled, so their cache always holds).
  const StreamingStats pair_delay_stats =
      scaled.has_value() ? delays.PairDelayStats()
                         : world.pair_delay_stats(spec.source_index);

  ExperimentResult result;
  result.mean_pair_delay_ms = pair_delay_stats.mean() / 1000.0;
  result.mean_pair_hops = world.mean_pair_hops(spec.source_index);

  // Effective cooperation degree.
  size_t degree = std::max<size_t>(1, spec.overlay.coop_degree);
  if (spec.overlay.controlled_cooperation) {
    core::CoopDegreeInputs inputs;
    inputs.avg_comm_delay =
        static_cast<sim::SimTime>(pair_delay_stats.mean());
    inputs.avg_comp_delay = sim::Millis(spec.policy.comp_delay_ms);
    inputs.f = spec.overlay.coop_f;
    inputs.max_resources = world.network().repositories;
    degree = std::min(degree, core::ComputeCooperationDegree(inputs));
  }
  result.effective_degree = degree;

  // Multi-source worlds restrict this run to the items its source owns;
  // single-source runs borrow the world's interests without copying.
  const std::vector<core::InterestSet>* interests = &world.interests();
  std::vector<core::InterestSet> owned;
  if (world.source_count() > 1) {
    owned = world.OwnedInterests(spec.source_index);
    interests = &owned;
  }

  core::LelaOptions lela_options;
  lela_options.coop_degree = degree;
  lela_options.p_window = spec.overlay.p_window;
  lela_options.preference = spec.overlay.preference;
  lela_options.insertion_order = spec.overlay.insertion_order;
  Rng lela_rng = Rng(spec.seed).Fork(4);
  Result<core::LelaResult> built =
      core::BuildOverlay(delays, *interests, world.workload().items,
                         lela_options, lela_rng);
  if (!built.ok()) return built.status();
  // Defense in depth: never simulate on a malformed overlay.
  D3T_RETURN_IF_ERROR(built->overlay.Validate(degree));
  result.build_info = built->info;
  result.shape = built->overlay.ComputeShape();

  std::unique_ptr<core::Disseminator> policy =
      core::MakeDisseminator(spec.policy.policy);
  if (policy == nullptr) {
    // Unreachable unless KnownPolicyNames() and the factory diverge.
    return Status::Internal("policy '" + spec.policy.policy +
                            "' is listed as known but has no factory");
  }

  core::EngineOptions engine_options;
  engine_options.comp_delay = sim::Millis(spec.policy.comp_delay_ms);
  engine_options.tag_check_cost_factor = spec.policy.tag_check_cost_factor;
  engine_options.coalesce_deliveries = spec.policy.coalesce_deliveries;
  engine_options.drain_process_spans = spec.policy.drain_process_spans;
  // Already validated by ValidateRunSpec above.
  engine_options.repair_policy =
      *core::ParseRepairPolicy(spec.policy.repair_policy);
  engine_options.repair_delay = sim::Millis(spec.policy.repair_delay_ms);
  engine_options.recorder = spec.recorder;
  engine_options.registry = spec.registry;
  const core::ChangeTimelines* timelines =
      spec.policy.use_cached_timelines ? &world.change_timelines() : nullptr;
  const core::Scenario* scenario =
      spec.scenario.empty() ? nullptr : &spec.scenario;
  // Wire mode: a per-run in-process bus whose rings the engine's
  // send-then-drain discipline keeps at depth <= 1, so a small fixed
  // capacity suffices for any world size.
  std::optional<net::InProcTransport> wire_bus;
  if (spec.policy.route_through_wire) {
    wire_bus.emplace(built->overlay.member_count(), 64);
    engine_options.wire_transport = &*wire_bus;
  }
  core::Engine engine(built->overlay, delays, world.traces(), *policy,
                      engine_options, timelines, scenario);
  Result<core::EngineMetrics> metrics = engine.Run();
  if (!metrics.ok()) return metrics.status();
  result.metrics = std::move(metrics).value();
  if (wire_bus.has_value()) result.wire = wire_bus->metrics();
  return result;
}

std::vector<size_t> LongestFirstOrder(const std::vector<RunSpec>& specs,
                                      const WorkloadConfig& workload) {
  std::vector<size_t> order(specs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // Engine cost scales with the tick count and (through fan-out and
  // message volume) with the cooperation degree; ticks x degree is a
  // cheap proxy that keeps a degree-100 point from tail-blocking a
  // sweep whose degree-1 points were submitted ahead of it.
  auto cost = [&](const RunSpec& spec) {
    return static_cast<uint64_t>(workload.ticks) *
           static_cast<uint64_t>(std::max<size_t>(1, spec.overlay.coop_degree));
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cost(specs[a]) > cost(specs[b]);
  });
  return order;
}

std::vector<Result<ExperimentResult>> SimulationSession::RunAll(
    const std::vector<RunSpec>& specs) const {
  std::vector<Result<ExperimentResult>> results(
      specs.size(), Result<ExperimentResult>(Status::Internal("not run")));
  size_t threads = worker_threads_ == 0 ? ThreadPool::DefaultThreadCount()
                                        : worker_threads_;
  threads = std::min(threads, specs.size());
  if (threads <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) results[i] = Run(specs[i]);
    return results;
  }
  ThreadPool pool(threads);
  // Longest-estimated-first submission so uneven sweeps don't leave the
  // pool idle behind one late-submitted expensive point; results[i]
  // still corresponds to specs[i] no matter the execution order.
  for (size_t i : LongestFirstOrder(specs, world_->workload())) {
    pool.Submit([this, &specs, &results, i] { results[i] = Run(specs[i]); });
  }
  pool.Wait();
  return results;
}

}  // namespace d3t::exp
