#ifndef D3T_EXP_SCENARIO_H_
#define D3T_EXP_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/scenario.h"
#include "sim/time.h"

namespace d3t::exp {

/// Fluent authoring of a core::Scenario — the scripted mid-run dynamics
/// a RunSpec carries. Ops may be added in any time order; Build() sorts
/// (stable) and validates.
///
///   auto scenario = ScenarioBuilder()
///       .FailRepo(sim::Seconds(30), 7).RecoverAt(sim::Seconds(90))
///       .FailRepo(sim::Seconds(45), 12)             // never recovers
///       .JoinInterest(sim::Seconds(60), 3, /*item=*/2, /*c=*/0.05)
///       .ChangeCoherency(sim::Seconds(75), 4, 0, 0.5)
///       .Build();
///
/// Members are overlay indices: 0 is the source (never a legal target),
/// repository i of the World is member i + 1.
class ScenarioBuilder {
 public:
  /// Repository `member` crashes at `at`.
  ScenarioBuilder& FailRepo(sim::SimTime at, core::OverlayIndex member);
  /// The member of the most recent FailRepo recovers at `at` (chained
  /// form). Must follow a FailRepo.
  ScenarioBuilder& RecoverAt(sim::SimTime at);
  /// Explicit-member recovery (when the chained form reads poorly).
  ScenarioBuilder& RecoverRepo(sim::SimTime at, core::OverlayIndex member);
  /// `member` declares a new own interest in `item` at tolerance `c`.
  ScenarioBuilder& JoinInterest(sim::SimTime at, core::OverlayIndex member,
                                core::ItemId item, core::Coherency c);
  /// `member` drops its own interest in `item`.
  ScenarioBuilder& LeaveInterest(sim::SimTime at, core::OverlayIndex member,
                                 core::ItemId item);
  /// Coherency renegotiation: `member`'s own tolerance for `item`
  /// becomes `c`.
  ScenarioBuilder& ChangeCoherency(sim::SimTime at,
                                   core::OverlayIndex member,
                                   core::ItemId item, core::Coherency c);

  size_t op_count() const { return ops_.size(); }

  /// Sorts and statically validates the script (core::Scenario::Create).
  /// A RecoverAt with no preceding FailRepo fails here.
  Result<core::Scenario> Build() const;

 private:
  std::vector<core::ScenarioOp> ops_;
  core::OverlayIndex last_failed_ = core::kInvalidOverlayIndex;
  bool dangling_recover_ = false;
};

/// Random-churn generation: `failures` fail/recover episodes spread
/// over the run, each repository down for a uniform fraction of the
/// horizon. Episodes of one repository never overlap; the generated
/// script is a deterministic function of the options.
struct ChurnOptions {
  /// Repositories in the world (members 1..repositories are eligible).
  size_t repositories = 0;
  /// Fail/recover episodes to generate.
  size_t failures = 4;
  /// Observation horizon (trace end) the episodes are placed within.
  sim::SimTime horizon = 0;
  /// Outage duration bounds as fractions of the horizon.
  double min_outage_fraction = 0.05;
  double max_outage_fraction = 0.25;
  /// Base seed; the generator decorrelates its stream from the run's
  /// other RNG consumers the same way PerSourceSeed does, so attaching
  /// churn to a run never perturbs LeLA's or the workload's randomness.
  uint64_t seed = 42;
};

/// Builds the churn scenario. Fails when the options cannot produce a
/// valid script (no repositories, horizon too small, bad fractions).
Result<core::Scenario> MakeChurnScenario(const ChurnOptions& options);

}  // namespace d3t::exp

#endif  // D3T_EXP_SCENARIO_H_
