#ifndef D3T_EXP_MULTI_SOURCE_H_
#define D3T_EXP_MULTI_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exp/experiment.h"

namespace d3t::exp {

/// Multi-source deployment (paper §4: "the extension to deal with
/// multiple sources is fairly straightforward"). Data items are
/// partitioned round-robin across `source_count` sources; each source
/// roots an independent dissemination graph built by LeLA over the same
/// repositories, and the per-item trees of different sources coexist on
/// the shared physical network (the peer-to-peer reading of §8: a
/// repository can serve item x while being served item y).
struct MultiSourceConfig {
  ExperimentConfig base;
  size_t source_count = 2;
};

/// Per-source slice of the aggregate result.
struct SourceSlice {
  size_t items = 0;
  uint64_t messages = 0;
  uint64_t source_checks = 0;
  double pair_loss_percent = 0.0;
  uint64_t tracked_pairs = 0;
};

struct MultiSourceResult {
  /// Pair-weighted loss of fidelity across all sources' items.
  double loss_percent = 0.0;
  uint64_t messages = 0;
  uint64_t checks = 0;
  /// Largest per-source check count — the hottest source.
  uint64_t max_source_checks = 0;
  std::vector<SourceSlice> per_source;
};

/// Runs the multi-source experiment: one topology with
/// `config.source_count` sources, one trace library, round-robin item
/// ownership, an independent LeLA overlay per source and one engine run
/// per source; metrics are aggregated pair-weighted.
Result<MultiSourceResult> RunMultiSource(const MultiSourceConfig& config);

}  // namespace d3t::exp

#endif  // D3T_EXP_MULTI_SOURCE_H_
