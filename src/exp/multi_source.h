#ifndef D3T_EXP_MULTI_SOURCE_H_
#define D3T_EXP_MULTI_SOURCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exp/experiment.h"

namespace d3t::exp {

/// Multi-source deployment (paper §4: "the extension to deal with
/// multiple sources is fairly straightforward"). Data items are
/// partitioned round-robin across `source_count` sources; each source
/// roots an independent dissemination graph built by LeLA over the same
/// repositories, and the per-item trees of different sources coexist on
/// the shared physical network (the peer-to-peer reading of §8: a
/// repository can serve item x while being served item y).
struct MultiSourceConfig {
  ExperimentConfig base;
  size_t source_count = 2;
  /// Worker threads for the per-source engine runs (the engines are
  /// independent — one World, N shards). 0 = one per hardware thread;
  /// 1 forces the serial reference path. Results are byte-identical
  /// either way.
  size_t worker_threads = 0;
};

/// Per-source slice of the aggregate result.
struct SourceSlice {
  size_t items = 0;
  uint64_t messages = 0;
  uint64_t source_checks = 0;
  double pair_loss_percent = 0.0;
  uint64_t tracked_pairs = 0;
};

struct MultiSourceResult {
  /// Pair-weighted loss of fidelity across all sources' items.
  double loss_percent = 0.0;
  uint64_t messages = 0;
  uint64_t checks = 0;
  /// Largest per-source check count — the hottest source.
  uint64_t max_source_checks = 0;
  std::vector<SourceSlice> per_source;
};

/// Builds the RunSpecs RunMultiSource executes: one per source, each
/// rooted at its source with a decorrelated PerSourceSeed stream.
/// Exposed so callers can tweak specs before running them on a session.
std::vector<RunSpec> MultiSourceSpecs(const ExperimentConfig& base,
                                      size_t source_count);

/// Runs the multi-source experiment: one World with
/// `config.source_count` sources, one trace library, round-robin item
/// ownership, an independent LeLA overlay per source and one engine run
/// per source — sharded across the session's worker pool; metrics are
/// aggregated pair-weighted in source order (deterministic regardless of
/// scheduling).
Result<MultiSourceResult> RunMultiSource(const MultiSourceConfig& config);

}  // namespace d3t::exp

#endif  // D3T_EXP_MULTI_SOURCE_H_
