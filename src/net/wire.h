#ifndef D3T_NET_WIRE_H_
#define D3T_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/result.h"
#include "common/status.h"
#include "sim/time.h"

namespace d3t::net::wire {

/// Versioned packed frame format for inter-repository traffic: every
/// message the engines move between overlay members (update pushes,
/// poll round trips), plus the control vocabulary a serving node needs
/// (feed ticks, scenario ops, metrics reports, shutdown). A frame is an
/// 8-byte header followed by one fixed-size POD payload whose shape is
/// selected by the header's type byte:
///
///   offset  size  field
///        0     2  magic     (0xD37A)
///        2     1  version   (1)
///        3     1  type      (FrameType)
///        4     2  length    (payload bytes; must match the type)
///        6     2  checksum  (Fletcher-16 over header bytes 0..5 + payload)
///
/// Payloads mirror the engine's POD event vocabulary (sim::Event, the
/// delivery Job, core::ScenarioOp) with raw fixed-width fields — the
/// wire layer sits below core/ in the include DAG, so it re-states the
/// field shapes instead of including them. Byte order is host order:
/// frames currently cross ring buffers and loopback streams on one
/// machine; a cross-machine socket transport would pin little-endian
/// here and swap on big-endian hosts.
///
/// Decode() is the only entry point for untrusted bytes. It never reads
/// past `size`, and it rejects truncated, over-length, wrong-version,
/// wrong-type and checksum-corrupt input with a precise Status.

inline constexpr uint16_t kMagic = 0xD37A;
/// v2: feed frames (hello / source-tick / scenario-op / shutdown) carry
/// an explicit sequence number, kResubscribe joins the vocabulary, and
/// metrics reports grow fault/recovery counters. v1 peers reject v2
/// frames by version byte — there is no mixed-version negotiation.
inline constexpr uint8_t kVersion = 2;
inline constexpr size_t kHeaderSize = 8;

/// Discriminator of the payload variant. Values are wire contract:
/// renumbering is a version bump.
enum class FrameType : uint8_t {
  kInvalid = 0,
  /// Feed handshake: world fingerprint the consumer validates before
  /// ingesting anything else.
  kHello = 1,
  /// One source trace tick (the live ingest feed).
  kSourceTick = 2,
  /// One update message pushed along an overlay edge (push engine).
  kUpdate = 3,
  /// One inter-node leg of a pull round trip (request or response).
  kPoll = 4,
  /// One scripted world-mutation op (mirrors core::ScenarioOp).
  kScenarioOp = 5,
  /// A node's transport counters, reported upstream.
  kMetricsReport = 6,
  /// End of feed.
  kShutdown = 7,
  /// A node's full engine results (every EngineMetrics scalar plus a
  /// digest of the per-member loss vector), reported upstream. This is
  /// the frame a cluster collector compares byte-for-byte against a
  /// direct in-process run.
  kEngineReport = 8,
  /// Feed recovery: a consumer that detected a sequence gap asks the
  /// publisher to rewind its cursor and retransmit from `resume_seq`.
  kResubscribe = 9,
  /// One seq-numbered chunk of a node's observability stream (metrics
  /// snapshot entries or flight-recorder trace events), reported
  /// upstream. serve/ owns the chunking/reassembly bridge.
  kObsSnapshot = 10,
};

/// Human-readable type name for diagnostics ("invalid" for unknowns).
const char* FrameTypeName(FrameType type);

// d3t-lint: pod-event
struct FrameHeader {
  uint16_t magic = kMagic;
  uint8_t version = kVersion;
  uint8_t type = 0;
  uint16_t length = 0;
  uint16_t checksum = 0;
};
static_assert(sizeof(FrameHeader) == kHeaderSize,
              "the wire header is an 8-byte contract; growing it breaks "
              "every peer");
static_assert(std::is_trivially_copyable_v<FrameHeader>,
              "headers are memcpy'd straight off byte streams");
static_assert(offsetof(FrameHeader, checksum) == 6,
              "the checksum covers header bytes [0, 6); its own offset "
              "is part of the wire contract");

// d3t-lint: pod-event
struct HelloPayload {
  /// Peer id the feed is addressed to.
  uint32_t node;
  /// Overlay member count (source included) of the world being fed.
  uint32_t member_count;
  /// Item count of the world being fed.
  uint32_t item_count;
  /// Feed sequence number (hello is always seq 0, the first frame of a
  /// feed; retransmitted hellos repeat seq 0).
  uint32_t seq;
  /// World seed, echoed for diagnostics; consumers need not check it.
  uint64_t world_seed;
};
static_assert(sizeof(HelloPayload) == 24, "hello frames are 24-byte PODs");
static_assert(std::is_trivially_copyable_v<HelloPayload>,
              "wire payloads must stay trivially copyable");

// d3t-lint: pod-event
struct SourceTickPayload {
  uint32_t item;
  /// Index of this tick within the item's trace (0 = initial value).
  uint32_t tick_index;
  int64_t at_us;
  double value;
  /// Feed sequence number: position of this frame in the publisher's
  /// total order (hello = 0, then schedule entries, then shutdown).
  uint32_t seq;
  uint32_t reserved;
};
static_assert(sizeof(SourceTickPayload) == 32,
              "source-tick frames are 32-byte PODs");
static_assert(std::is_trivially_copyable_v<SourceTickPayload>,
              "wire payloads must stay trivially copyable");

// d3t-lint: pod-event
struct UpdatePayload {
  /// Overlay member pushing the update.
  uint32_t src;
  /// Overlay member the update is addressed to.
  uint32_t dst;
  /// Arrival instant at `dst` (send time + edge delay), microseconds.
  int64_t arrival_us;
  uint32_t item;
  uint32_t reserved;
  double value;
  /// Policy tag riding the update (the centralized policy's tolerance
  /// tag; 0 under policies that do not tag).
  double tag;
};
static_assert(sizeof(UpdatePayload) == 40,
              "update frames mirror the engine's 24-byte Job plus "
              "addressing; 40-byte PODs");
static_assert(std::is_trivially_copyable_v<UpdatePayload>,
              "wire payloads must stay trivially copyable");

// d3t-lint: pod-event
struct PollPayload {
  uint32_t src;
  uint32_t dst;
  /// Arrival instant of this leg at `dst`, microseconds.
  int64_t at_us;
  /// Poll-loop (state) index the legs of one round trip share.
  uint32_t state_index;
  /// PullEngine poll phase (request arrival / response arrival).
  uint32_t phase;
  /// Sampled source value (responses; 0 on requests).
  double value;
};
static_assert(sizeof(PollPayload) == 32, "poll frames are 32-byte PODs");
static_assert(std::is_trivially_copyable_v<PollPayload>,
              "wire payloads must stay trivially copyable");

// d3t-lint: pod-event
struct ScenarioOpPayload {
  int64_t at_us;
  /// core::ScenarioOpKind as a raw value; consumers range-check before
  /// casting (the wire layer sits below core/ and cannot name the enum).
  uint32_t kind;
  uint32_t member;
  uint32_t item;
  /// Feed sequence number (see SourceTickPayload::seq).
  uint32_t seq;
  double c;
};
static_assert(sizeof(ScenarioOpPayload) == 32,
              "scenario-op frames mirror the 32-byte core::ScenarioOp");
static_assert(std::is_trivially_copyable_v<ScenarioOpPayload>,
              "wire payloads must stay trivially copyable");

// d3t-lint: pod-event
struct MetricsReportPayload {
  uint32_t node;
  uint32_t reserved;
  uint64_t frames_tx;
  uint64_t frames_rx;
  uint64_t bytes_tx;
  uint64_t bytes_rx;
  uint64_t backpressure_stalls;
  uint64_t decode_errors;
  /// Fault-injection / recovery counters (0 outside chaos runs).
  uint64_t faults_injected;
  uint64_t frames_dropped;
  uint64_t reconnects;
};
static_assert(sizeof(MetricsReportPayload) == 80,
              "metrics-report frames are 80-byte PODs");
static_assert(std::is_trivially_copyable_v<MetricsReportPayload>,
              "wire payloads must stay trivially copyable");

/// Wire image of core::EngineMetrics: every scalar verbatim, the
/// per-member loss vector as a length + FNV-1a digest (a fixed-size
/// payload cannot carry a member-count-sized array; the digest still
/// pins the vector byte-for-byte). The wire layer sits below core/ in
/// the include DAG, so it re-states the field shapes instead of
/// including them; serve/ owns the EngineMetrics <-> payload bridge.
// d3t-lint: pod-event
struct EngineReportPayload {
  /// Reporting node (cluster peer id).
  uint32_t node;
  /// Length of the per-member loss vector the digest covers.
  uint32_t member_count;
  double loss_percent;
  double pair_loss_percent;
  double outage_loss_percent;
  uint64_t tracked_pairs;
  uint64_t messages;
  uint64_t source_messages;
  uint64_t checks;
  uint64_t source_checks;
  uint64_t source_updates;
  uint64_t events;
  uint64_t delivery_batches;
  uint64_t coalesced_messages;
  uint64_t process_wakeups;
  uint64_t scenario_ops;
  uint64_t repairs;
  uint64_t orphaned_ticks;
  uint64_t dropped_jobs;
  int64_t outage_pair_time;
  int64_t outage_out_of_sync_time;
  int64_t horizon;
  /// FNV-1a (64-bit) over the raw bytes of per_member_loss.
  uint64_t per_member_loss_hash;
};
static_assert(sizeof(EngineReportPayload) == 176,
              "engine-report frames are 176-byte PODs (2 u32 ids + 21 "
              "8-byte metric fields)");
static_assert(std::is_trivially_copyable_v<EngineReportPayload>,
              "wire payloads must stay trivially copyable");

// d3t-lint: pod-event
struct ShutdownPayload {
  uint32_t node;
  /// Feed sequence number (see SourceTickPayload::seq); shutdown is the
  /// last frame of a feed, so its seq equals the feed's frame count - 1.
  uint32_t seq;
};
static_assert(sizeof(ShutdownPayload) == 8,
              "shutdown frames are 8-byte PODs");
static_assert(std::is_trivially_copyable_v<ShutdownPayload>,
              "wire payloads must stay trivially copyable");

/// Feed-recovery request: sent upstream (consumer -> publisher) when a
/// consumer detects a sequence gap or wants the tail of a feed resent.
/// The publisher rewinds its per-subscriber cursor to `resume_seq` (the
/// first sequence number the consumer is missing, i.e. last contiguous
/// seq + 1) and retransmits, provided the cursor still falls inside its
/// bounded replay window.
// d3t-lint: pod-event
struct ResubscribePayload {
  /// Peer id of the requesting consumer.
  uint32_t node;
  /// First sequence number to retransmit.
  uint32_t resume_seq;
};
static_assert(sizeof(ResubscribePayload) == 8,
              "resubscribe frames are 8-byte PODs");
static_assert(std::is_trivially_copyable_v<ResubscribePayload>,
              "wire payloads must stay trivially copyable");

/// One chunk of a node's observability stream. obs::Snapshot (up to 256
/// 24-byte entries) and a flight-recorder spill (any number of 32-byte
/// obs::TraceEvents) both exceed a fixed payload, so they cross the wire
/// as a seq-numbered chunk sequence: `seq` runs 0..total-1 over one
/// stream, `chunk_kind` says what the words carry, `count` how many
/// records ride this chunk. Records are memcpy'd into `words` back to
/// back (the obs PODs are padding-free), so reassembly on the far side
/// is byte-identical by construction — the cluster test pins that. The
/// wire layer sits below obs/ consumers in serve/, which own the
/// chunking bridge (serve::MakeObsSnapshotFrames / ObsAccumulator).
// d3t-lint: pod-event
struct ObsSnapshotPayload {
  /// Chunk carries obs::SnapshotEntry records (3 words each).
  static constexpr uint16_t kChunkSnapshotEntries = 0;
  /// Chunk carries obs::TraceEvent records (4 words each).
  static constexpr uint16_t kChunkTraceEvents = 1;
  /// Stream header, always seq 0 with count 0: words[0] = snapshot
  /// entry total, words[1] = snapshot truncated flag, words[2] = trace
  /// events following, words[3]/words[4] = the recorder's cumulative
  /// recorded/dropped counts.
  static constexpr uint16_t kChunkHeader = 2;
  /// Reporting node (cluster peer id).
  uint32_t node;
  uint16_t chunk_kind;
  /// Records packed into `words` (0 allowed: an empty stream is one
  /// chunk announcing total=1, count=0).
  uint16_t count;
  /// Chunk index within this node's stream.
  uint32_t seq;
  /// Total chunks in this node's stream.
  uint32_t total;
  uint64_t words[20];
};
static_assert(sizeof(ObsSnapshotPayload) == 176,
              "obs-snapshot chunks fill the largest payload slot: 16-byte "
              "chunk header + 20 packed words");
static_assert(std::is_trivially_copyable_v<ObsSnapshotPayload>,
              "wire payloads must stay trivially copyable");

/// A decoded frame: the type tag plus the payload variant it selects.
/// Only the member matching `type` is meaningful; factories below are
/// the one way frames are built, and they aggregate-initialize every
/// field of the active member (payload structs deliberately have no
/// default member initializers — a union member must stay trivially
/// default-constructible — and are padding-free by construction, so the
/// encoder's checksum covers only initialized bytes).
// d3t-lint: pod-event
struct Frame {
  union Payload {
    HelloPayload hello;
    SourceTickPayload source_tick;
    UpdatePayload update;
    PollPayload poll;
    ScenarioOpPayload scenario;
    MetricsReportPayload metrics;
    ShutdownPayload shutdown;
    EngineReportPayload engine_report;
    ResubscribePayload resubscribe;
    ObsSnapshotPayload obs_snapshot;
  };

  FrameType type = FrameType::kInvalid;
  Payload u;

  static Frame Hello(uint32_t node, uint32_t member_count,
                     uint32_t item_count, uint64_t world_seed,
                     uint32_t seq = 0);
  static Frame SourceTick(uint32_t item, uint32_t tick_index, int64_t at_us,
                          double value, uint32_t seq = 0);
  static Frame Update(uint32_t src, uint32_t dst, int64_t arrival_us,
                      uint32_t item, double value, double tag);
  static Frame Poll(uint32_t src, uint32_t dst, int64_t at_us,
                    uint32_t state_index, uint32_t phase, double value);
  static Frame ScenarioOp(int64_t at_us, uint32_t kind, uint32_t member,
                          uint32_t item, double c, uint32_t seq = 0);
  static Frame MetricsReport(uint32_t node, uint64_t frames_tx,
                             uint64_t frames_rx, uint64_t bytes_tx,
                             uint64_t bytes_rx, uint64_t backpressure_stalls,
                             uint64_t decode_errors,
                             uint64_t faults_injected = 0,
                             uint64_t frames_dropped = 0,
                             uint64_t reconnects = 0);
  static Frame Shutdown(uint32_t node, uint32_t seq = 0);
  static Frame Resubscribe(uint32_t node, uint32_t resume_seq);
  /// `payload` must have every field set (serve::MakeEngineReport is
  /// the one bridge from core::EngineMetrics).
  static Frame EngineReport(const EngineReportPayload& payload);
  /// `payload` must have every field set, unused `words` zeroed
  /// (serve::MakeObsSnapshotFrames is the one bridge from
  /// obs::Snapshot / obs::TraceEvent streams).
  static Frame ObsSnapshot(const ObsSnapshotPayload& payload);
};
static_assert(sizeof(Frame) == 184,
              "decoded frames are 184-byte slots (8-byte-aligned tag + "
              "176-byte payload union) — transport rings size to this");
static_assert(std::is_trivially_copyable_v<Frame>,
              "frames cross ring buffers by memcpy");

inline constexpr size_t kMaxPayloadSize = sizeof(Frame::Payload);
inline constexpr size_t kMaxFrameSize = kHeaderSize + kMaxPayloadSize;

/// True for the frame kinds a feed publisher emits in sequence (hello,
/// source-tick, scenario-op, shutdown) — exactly the kinds that carry a
/// `seq` field and participate in gap detection / resubscribe recovery.
bool IsFeedFrame(FrameType type);

/// Sequence number of a feed frame; 0 for non-feed kinds.
uint32_t FeedSeq(const Frame& frame);

/// Stamps the sequence number of a feed frame; no-op for other kinds.
void SetFeedSeq(Frame& frame, uint32_t seq);

/// Payload bytes of a frame of `type`; 0 for kInvalid/unknown values.
size_t PayloadSize(FrameType type);

/// Total encoded size (header + payload) of a frame of `type`; just
/// kHeaderSize for unknown types (which cannot be encoded).
size_t EncodedSize(FrameType type);

/// Serializes `frame` into `out` (capacity `cap` bytes) and returns the
/// bytes written — 0 when the type is unknown or `cap` is too small.
/// A kMaxFrameSize buffer always fits any frame.
size_t Encode(const Frame& frame, uint8_t* out, size_t cap);

/// Validates the header prefix of a byte stream and returns the full
/// size of the frame it announces, without touching the payload.
/// `size` >= kHeaderSize is required (IoError "truncated" otherwise) —
/// stream deframers call this to learn how many bytes to wait for.
Result<size_t> PeekFrameSize(const uint8_t* data, size_t size);

/// Decodes one frame from the front of `data`. Never reads beyond
/// `size`. On success `*consumed` (when non-null) is set to the bytes
/// the frame occupied; trailing bytes are ignored (they belong to the
/// next frame). Errors: IoError for truncation and checksum mismatch,
/// InvalidArgument for bad magic/version/type/length.
Result<Frame> Decode(const uint8_t* data, size_t size,
                     size_t* consumed = nullptr);

}  // namespace d3t::net::wire

#endif  // D3T_NET_WIRE_H_
