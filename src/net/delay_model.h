#ifndef D3T_NET_DELAY_MODEL_H_
#define D3T_NET_DELAY_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/time.h"

namespace d3t::net {

/// Compact index of an overlay member (the source plus every repository)
/// used by the dissemination layer. Index 0 is always the source.
using OverlayIndex = uint32_t;

inline constexpr OverlayIndex kSourceOverlayIndex = 0;
inline constexpr OverlayIndex kInvalidOverlayIndex = UINT32_MAX;

/// Pairwise communication delays (and hop counts) between overlay
/// members, extracted from the physical routing substrate. This is the
/// only view of the network the coherency layer needs: delay(parent,
/// child) is the full path delay across routers, as in the paper's
/// model.
///
/// The backing store is *compressed*: it covers only the member x member
/// submatrix the engines and LeLA actually query (never the physical
/// n x n all-pairs tables), packed as 32-bit microsecond delays and
/// 16-bit hop counts — 6 bytes per pair instead of the 12 a SimTime +
/// uint32 pair costs. Query results are numerically identical to the
/// wide representation; packing a value that does not fit (a path delay
/// over ~71 minutes) saturates, which no generated topology approaches.
class OverlayDelayModel {
 public:
  /// Builds the model from a routed topology. `routing` must have valid
  /// rows for the source and all repositories. The topology must have
  /// exactly one source; multi-source topologies use the overload below.
  static Result<OverlayDelayModel> FromRouting(const Topology& topo,
                                               const RoutingTables& routing);

  /// Multi-source variant: builds the model rooted at `source` (which
  /// must be one of the topology's source nodes). Repositories are the
  /// same regardless of the chosen source, so one model per source
  /// supports per-source dissemination overlays (paper §4's extension).
  static Result<OverlayDelayModel> FromRoutingWithSource(
      const Topology& topo, const RoutingTables& routing, NodeId source);

  /// Memory-bounded builder for large networks: routes one member row at
  /// a time (Dijkstra through two scratch buffers) straight into the
  /// compressed member x member model(s) — one per source node, in
  /// SourceNodes() order — without ever materializing a physical-node
  /// routing table. Numerically identical to DijkstraRows +
  /// FromRoutingWithSource. Rows are independent, so `worker_threads`
  /// > 1 fans them out over a pool; results do not depend on the thread
  /// count. Fails if the topology is disconnected or has no source.
  static Result<std::vector<OverlayDelayModel>> FromTopologyAllSources(
      const Topology& topo, size_t worker_threads = 1);

  /// Builds a synthetic model with `member_count` members (including the
  /// source) and a constant delay/hops everywhere — handy for unit tests
  /// and controlled experiments.
  static OverlayDelayModel Uniform(size_t member_count, sim::SimTime delay,
                                   uint32_t hops = 1);

  size_t member_count() const { return count_; }
  /// Number of repositories (member_count minus the source).
  size_t repository_count() const { return count_ - 1; }

  sim::SimTime Delay(OverlayIndex from, OverlayIndex to) const {
    return static_cast<sim::SimTime>(delay_[Idx(from, to)]);
  }
  uint32_t Hops(OverlayIndex from, OverlayIndex to) const {
    return hops_[Idx(from, to)];
  }

  /// Physical node backing an overlay member (kInvalidNode for synthetic
  /// models).
  NodeId PhysicalNode(OverlayIndex m) const { return physical_[m]; }

  /// Mean/min/max of off-diagonal pair delays (microseconds).
  StreamingStats PairDelayStats() const;

  /// Mean off-diagonal pair hop count.
  double MeanPairHops() const;

  /// Returns a copy whose mean pair delay equals `target_mean` (all pair
  /// delays scaled by a common factor). Used by the communication-delay
  /// sweeps (Figs. 5 and 7b). A zero target zeroes all delays.
  OverlayDelayModel ScaledToMeanDelay(sim::SimTime target_mean) const;

 private:
  /// Packed pair entries; see the class comment.
  using PackedDelay = uint32_t;
  using PackedHops = uint16_t;

  explicit OverlayDelayModel(size_t count);

  static PackedDelay PackDelay(sim::SimTime delay);
  static PackedHops PackHops(uint32_t hops);

  size_t Idx(OverlayIndex a, OverlayIndex b) const {
    return static_cast<size_t>(a) * count_ + b;
  }

  size_t count_ = 0;
  std::vector<PackedDelay> delay_;
  std::vector<PackedHops> hops_;
  std::vector<NodeId> physical_;
};

}  // namespace d3t::net

#endif  // D3T_NET_DELAY_MODEL_H_
