#include "net/fault_transport.h"

#include <algorithm>

#include "common/random.h"

namespace d3t::net {
namespace {

void AddCounters(TransportMetrics& into, const TransportMetrics& extra) {
  into.frames_tx += extra.frames_tx;
  into.frames_rx += extra.frames_rx;
  into.bytes_tx += extra.bytes_tx;
  into.bytes_rx += extra.bytes_rx;
  into.backpressure_stalls += extra.backpressure_stalls;
  into.decode_errors += extra.decode_errors;
  into.faults_injected += extra.faults_injected;
  into.frames_dropped += extra.frames_dropped;
  into.reconnects += extra.reconnects;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropFrame:
      return "drop-frame";
    case FaultKind::kDuplicateFrame:
      return "duplicate-frame";
    case FaultKind::kCorruptByte:
      return "corrupt-byte";
    case FaultKind::kDelayFrame:
      return "delay-frame";
    case FaultKind::kResetConn:
      return "reset-conn";
    case FaultKind::kWedgePeer:
      return "wedge-peer";
  }
  return "invalid";
}

Result<FaultScript> FaultScript::Create(std::vector<FaultOp> ops) {
  uint64_t prev = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind > static_cast<uint32_t>(FaultKind::kWedgePeer)) {
      return Status::InvalidArgument("fault script op " + std::to_string(i) +
                                     " has unknown kind " +
                                     std::to_string(ops[i].kind));
    }
    if (ops[i].at_send < prev) {
      return Status::InvalidArgument(
          "fault script is not time-sorted: op " + std::to_string(i) +
          " at_send " + std::to_string(ops[i].at_send) + " precedes op " +
          std::to_string(i - 1) + " at_send " + std::to_string(prev));
    }
    prev = ops[i].at_send;
  }
  return FaultScript(std::move(ops));
}

FaultInjectingTransport::FaultInjectingTransport(Transport& inner,
                                                 FaultScript script,
                                                 uint64_t seed)
    : inner_(inner), script_(std::move(script)), rng_state_(seed) {
  // Every buffer the hot Send path touches is sized here: at most one
  // frame can be held back per kDelayFrame op, so the script length
  // bounds the delay queue.
  delayed_.reserve(script_.size());
  extra_.resize(inner_.peer_count());
  merged_.resize(inner_.peer_count());
}

bool FaultInjectingTransport::Matches(const FaultOp& op, PeerId from,
                                      PeerId to) const {
  return (op.from == kAnyPeer || op.from == from) &&
         (op.to == kAnyPeer || op.to == to);
}

bool FaultInjectingTransport::Wedged(PeerId from, PeerId to,
                                     uint64_t at) const {
  return wedge_peer_ != kInvalidPeerId && at < wedge_until_ &&
         (from == wedge_peer_ || to == wedge_peer_);
}

void FaultInjectingTransport::CountDrop(PeerId from) {
  ++extra_totals_.frames_dropped;
  if (from < extra_.size()) ++extra_[from].frames_dropped;
}

Status FaultInjectingTransport::Forward(PeerId from, PeerId to,
                                        const wire::Frame& frame) {
  return inner_.Send(from, to, frame);
}

// Releases every delayed frame whose time has come, in original send
// order, ahead of the frame whose Send triggered the release. A frame
// released into a wedge window, or refused by backpressure, is lost —
// a counted drop the session layer recovers from.
void FaultInjectingTransport::ReleaseDue() {
  if (delayed_.empty()) return;
  size_t keep = 0;
  for (size_t i = 0; i < delayed_.size(); ++i) {
    Delayed& d = delayed_[i];
    if (d.release_at > sends_) {
      delayed_[keep++] = d;
      continue;
    }
    if (Wedged(d.from, d.to, sends_)) {
      CountDrop(d.from);
      continue;
    }
    if (!Forward(d.from, d.to, d.frame).ok()) CountDrop(d.from);
  }
  delayed_.resize(keep);
}

void FaultInjectingTransport::DropDelayedMatching(const FaultOp& op) {
  size_t keep = 0;
  for (size_t i = 0; i < delayed_.size(); ++i) {
    Delayed& d = delayed_[i];
    if (Matches(op, d.from, d.to)) {
      CountDrop(d.from);
      continue;
    }
    delayed_[keep++] = d;
  }
  delayed_.resize(keep);
}

// d3t-lint: hot
Status FaultInjectingTransport::Send(PeerId from, PeerId to,
                                     const wire::Frame& frame) {
  ReleaseDue();
  const uint64_t idx = sends_++;

  if (Wedged(from, to, idx)) {
    CountDrop(from);
    return Status::Ok();
  }

  // Ops execute strictly in script order: the head op arms once its
  // at_send has passed and fires on the first matching send. An op
  // whose filter never matches holds the script (by design — scripts
  // are validated against the workload they target).
  if (next_op_ >= script_.size() || script_.op(next_op_).at_send > idx ||
      !Matches(script_.op(next_op_), from, to) || from >= extra_.size() ||
      to >= extra_.size()) {
    return Forward(from, to, frame);
  }
  const FaultOp op = script_.op(next_op_++);
  ++extra_totals_.faults_injected;
  ++extra_[from].faults_injected;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::TraceEventKind::kFaultInjected, from, op.kind,
                      to);
  }

  switch (static_cast<FaultKind>(op.kind)) {
    case FaultKind::kDropFrame: {
      CountDrop(from);
      return Status::Ok();
    }
    case FaultKind::kDuplicateFrame: {
      const Status first = Forward(from, to, frame);
      if (first.ok()) {
        // The duplicate may be refused by backpressure; that loss is
        // the fault's own problem, not the sender's.
        Status dup = Forward(from, to, frame);
        if (!dup.ok()) CountDrop(from);
      }
      return first;
    }
    case FaultKind::kCorruptByte: {
      // Genuinely exercise the checksum: encode, flip one bit, decode.
      // Every single-bit flip is detected (wire_test pins this), so the
      // frame becomes a receiver-side decode error plus a drop.
      uint8_t image[wire::kMaxFrameSize];
      const size_t n = wire::Encode(frame, image, sizeof(image));
      if (n == 0) return Forward(from, to, frame);
      const size_t byte = (op.arg == kAnyArg)
                              ? static_cast<size_t>(SplitMix64(rng_state_) % n)
                              : static_cast<size_t>(op.arg) % n;
      const int bit = static_cast<int>(SplitMix64(rng_state_) % 8);
      image[byte] = static_cast<uint8_t>(image[byte] ^ (1u << bit));
      Result<wire::Frame> decoded = wire::Decode(image, n);
      if (decoded.ok()) return Forward(from, to, *decoded);
      ++extra_totals_.decode_errors;
      ++extra_[to].decode_errors;
      CountDrop(from);
      return Status::Ok();
    }
    case FaultKind::kDelayFrame: {
      uint64_t distance = (op.arg == 0 || op.arg == kAnyArg) ? 1 : op.arg;
      delayed_.push_back(Delayed{frame, from, to, idx + distance});
      return Status::Ok();
    }
    case FaultKind::kResetConn: {
      // The connection dies mid-flight: the triggering frame and every
      // delayed frame on a matching path are lost; the transport-level
      // reconnect (counted here) restores the path for later sends.
      ++extra_totals_.reconnects;
      ++extra_[from].reconnects;
      DropDelayedMatching(op);
      CountDrop(from);
      return Status::Ok();
    }
    case FaultKind::kWedgePeer: {
      wedge_peer_ = (op.to != kAnyPeer) ? op.to
                    : (op.from != kAnyPeer) ? op.from
                                            : to;
      wedge_until_ = (op.arg == 0) ? UINT64_MAX : idx + op.arg;
      CountDrop(from);
      return Status::Ok();
    }
  }
  return Forward(from, to, frame);
}

// d3t-lint: hot
bool FaultInjectingTransport::Poll(PeerId self, wire::Frame* out,
                                   PeerId* from) {
  return inner_.Poll(self, out, from);
}

const TransportMetrics& FaultInjectingTransport::metrics() const {
  merged_totals_ = inner_.metrics();
  AddCounters(merged_totals_, extra_totals_);
  return merged_totals_;
}

const TransportMetrics& FaultInjectingTransport::peer_metrics(
    PeerId peer) const {
  merged_[peer] = inner_.peer_metrics(peer);
  AddCounters(merged_[peer], extra_[peer]);
  return merged_[peer];
}

}  // namespace d3t::net
