#include "net/topology.h"

#include <vector>

namespace d3t::net {

Topology::Topology(size_t node_count)
    : kinds_(node_count, NodeKind::kRouter), adjacency_(node_count) {}

void Topology::set_kind(NodeId n, NodeKind kind) { kinds_[n] = kind; }

Status Topology::AddLink(NodeId a, NodeId b, sim::SimTime delay) {
  if (a >= node_count() || b >= node_count()) {
    return Status::OutOfRange("link endpoint out of range");
  }
  if (a == b) return Status::InvalidArgument("self-loop link");
  if (delay < 0) return Status::InvalidArgument("negative link delay");
  links_.push_back(Link{a, b, delay});
  adjacency_[a].emplace_back(b, delay);
  adjacency_[b].emplace_back(a, delay);
  return Status::Ok();
}

std::vector<NodeId> Topology::RepositoryNodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < kinds_.size(); ++n) {
    if (kinds_[n] == NodeKind::kRepository) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> Topology::SourceNodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < kinds_.size(); ++n) {
    if (kinds_[n] == NodeKind::kSource) out.push_back(n);
  }
  return out;
}

NodeId Topology::SourceNode() const {
  NodeId source = kInvalidNode;
  for (NodeId n = 0; n < kinds_.size(); ++n) {
    if (kinds_[n] == NodeKind::kSource) {
      if (source != kInvalidNode) return kInvalidNode;
      source = n;
    }
  }
  return source;
}

bool Topology::IsConnected() const {
  if (node_count() == 0) return true;
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    for (const auto& [peer, delay] : adjacency_[n]) {
      (void)delay;
      if (!seen[peer]) {
        seen[peer] = true;
        ++reached;
        stack.push_back(peer);
      }
    }
  }
  return reached == node_count();
}

}  // namespace d3t::net
