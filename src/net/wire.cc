#include "net/wire.h"

#include <cstring>

namespace d3t::net::wire {
namespace {

/// Fletcher-16 with position-sensitive running sums (mod 255). Chained
/// across header-prefix and payload via the packed (sum1 << 8 | sum2)
/// seed so the two regions need not be contiguous in memory. Detects
/// every single-bit flip: a one-bit change shifts a byte by ±2^k with
/// k <= 7, and no such delta is ≡ 0 (mod 255).
// d3t-lint: hot
uint16_t Fletcher16(const uint8_t* data, size_t size, uint16_t seed) {
  uint32_t sum1 = seed >> 8;
  uint32_t sum2 = seed & 0xFF;
  for (size_t i = 0; i < size; ++i) {
    sum1 = (sum1 + data[i]) % 255;
    sum2 = (sum2 + sum1) % 255;
  }
  return static_cast<uint16_t>((sum1 << 8) | sum2);
}

/// Checksum of a frame image: header bytes [0, 6) — magic, version,
/// type, length; the checksum field itself is excluded — chained with
/// the payload bytes. Covering the type byte matters: several payloads
/// share a size, so a payload-only sum would pass a type flip through.
// d3t-lint: hot
uint16_t FrameChecksum(const FrameHeader& header, const uint8_t* payload,
                       size_t payload_size) {
  uint8_t prefix[6];
  std::memcpy(prefix, &header, sizeof(prefix));
  const uint16_t seed = Fletcher16(prefix, sizeof(prefix), 0);
  return Fletcher16(payload, payload_size, seed);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kInvalid:
      break;
    case FrameType::kHello:
      return "hello";
    case FrameType::kSourceTick:
      return "source-tick";
    case FrameType::kUpdate:
      return "update";
    case FrameType::kPoll:
      return "poll";
    case FrameType::kScenarioOp:
      return "scenario-op";
    case FrameType::kMetricsReport:
      return "metrics-report";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kEngineReport:
      return "engine-report";
    case FrameType::kResubscribe:
      return "resubscribe";
    case FrameType::kObsSnapshot:
      return "obs-snapshot";
  }
  return "invalid";
}

bool IsFeedFrame(FrameType type) {
  switch (type) {
    case FrameType::kHello:
    case FrameType::kSourceTick:
    case FrameType::kScenarioOp:
    case FrameType::kShutdown:
      return true;
    default:
      return false;
  }
}

uint32_t FeedSeq(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      return frame.u.hello.seq;
    case FrameType::kSourceTick:
      return frame.u.source_tick.seq;
    case FrameType::kScenarioOp:
      return frame.u.scenario.seq;
    case FrameType::kShutdown:
      return frame.u.shutdown.seq;
    default:
      return 0;
  }
}

void SetFeedSeq(Frame& frame, uint32_t seq) {
  switch (frame.type) {
    case FrameType::kHello:
      frame.u.hello.seq = seq;
      break;
    case FrameType::kSourceTick:
      frame.u.source_tick.seq = seq;
      break;
    case FrameType::kScenarioOp:
      frame.u.scenario.seq = seq;
      break;
    case FrameType::kShutdown:
      frame.u.shutdown.seq = seq;
      break;
    default:
      break;
  }
}

Frame Frame::Hello(uint32_t node, uint32_t member_count, uint32_t item_count,
                   uint64_t world_seed, uint32_t seq) {
  Frame f;
  f.type = FrameType::kHello;
  f.u.hello = HelloPayload{node, member_count, item_count, seq, world_seed};
  return f;
}

Frame Frame::SourceTick(uint32_t item, uint32_t tick_index, int64_t at_us,
                        double value, uint32_t seq) {
  Frame f;
  f.type = FrameType::kSourceTick;
  f.u.source_tick = SourceTickPayload{item, tick_index, at_us, value, seq, 0};
  return f;
}

Frame Frame::Update(uint32_t src, uint32_t dst, int64_t arrival_us,
                    uint32_t item, double value, double tag) {
  Frame f;
  f.type = FrameType::kUpdate;
  f.u.update = UpdatePayload{src, dst, arrival_us, item, 0, value, tag};
  return f;
}

Frame Frame::Poll(uint32_t src, uint32_t dst, int64_t at_us,
                  uint32_t state_index, uint32_t phase, double value) {
  Frame f;
  f.type = FrameType::kPoll;
  f.u.poll = PollPayload{src, dst, at_us, state_index, phase, value};
  return f;
}

Frame Frame::ScenarioOp(int64_t at_us, uint32_t kind, uint32_t member,
                        uint32_t item, double c, uint32_t seq) {
  Frame f;
  f.type = FrameType::kScenarioOp;
  f.u.scenario = ScenarioOpPayload{at_us, kind, member, item, seq, c};
  return f;
}

Frame Frame::MetricsReport(uint32_t node, uint64_t frames_tx,
                           uint64_t frames_rx, uint64_t bytes_tx,
                           uint64_t bytes_rx, uint64_t backpressure_stalls,
                           uint64_t decode_errors, uint64_t faults_injected,
                           uint64_t frames_dropped, uint64_t reconnects) {
  Frame f;
  f.type = FrameType::kMetricsReport;
  f.u.metrics = MetricsReportPayload{node,
                                     0,
                                     frames_tx,
                                     frames_rx,
                                     bytes_tx,
                                     bytes_rx,
                                     backpressure_stalls,
                                     decode_errors,
                                     faults_injected,
                                     frames_dropped,
                                     reconnects};
  return f;
}

Frame Frame::Shutdown(uint32_t node, uint32_t seq) {
  Frame f;
  f.type = FrameType::kShutdown;
  f.u.shutdown = ShutdownPayload{node, seq};
  return f;
}

Frame Frame::Resubscribe(uint32_t node, uint32_t resume_seq) {
  Frame f;
  f.type = FrameType::kResubscribe;
  f.u.resubscribe = ResubscribePayload{node, resume_seq};
  return f;
}

Frame Frame::EngineReport(const EngineReportPayload& payload) {
  Frame f;
  f.type = FrameType::kEngineReport;
  f.u.engine_report = payload;
  return f;
}

Frame Frame::ObsSnapshot(const ObsSnapshotPayload& payload) {
  Frame f;
  f.type = FrameType::kObsSnapshot;
  f.u.obs_snapshot = payload;
  return f;
}

size_t PayloadSize(FrameType type) {
  switch (type) {
    case FrameType::kInvalid:
      break;
    case FrameType::kHello:
      return sizeof(HelloPayload);
    case FrameType::kSourceTick:
      return sizeof(SourceTickPayload);
    case FrameType::kUpdate:
      return sizeof(UpdatePayload);
    case FrameType::kPoll:
      return sizeof(PollPayload);
    case FrameType::kScenarioOp:
      return sizeof(ScenarioOpPayload);
    case FrameType::kMetricsReport:
      return sizeof(MetricsReportPayload);
    case FrameType::kShutdown:
      return sizeof(ShutdownPayload);
    case FrameType::kEngineReport:
      return sizeof(EngineReportPayload);
    case FrameType::kResubscribe:
      return sizeof(ResubscribePayload);
    case FrameType::kObsSnapshot:
      return sizeof(ObsSnapshotPayload);
  }
  return 0;
}

size_t EncodedSize(FrameType type) { return kHeaderSize + PayloadSize(type); }

// d3t-lint: hot
size_t Encode(const Frame& frame, uint8_t* out, size_t cap) {
  const size_t payload_size = PayloadSize(frame.type);
  if (payload_size == 0) return 0;
  const size_t total = kHeaderSize + payload_size;
  if (cap < total) return 0;

  FrameHeader header;
  header.type = static_cast<uint8_t>(frame.type);
  header.length = static_cast<uint16_t>(payload_size);
  // The payload union's active member is exactly payload_size bytes at
  // offset 0; every payload struct is padding-free, so each byte the
  // checksum covers is initialized.
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(&frame.u);
  header.checksum = FrameChecksum(header, payload, payload_size);

  std::memcpy(out, &header, kHeaderSize);
  std::memcpy(out + kHeaderSize, payload, payload_size);
  return total;
}

Result<size_t> PeekFrameSize(const uint8_t* data, size_t size) {
  if (size < kHeaderSize) {
    return Status::IoError("truncated frame header");
  }
  FrameHeader header;
  std::memcpy(&header, data, kHeaderSize);
  if (header.magic != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument("unsupported frame version");
  }
  const size_t payload_size = PayloadSize(static_cast<FrameType>(header.type));
  if (payload_size == 0) {
    return Status::InvalidArgument("unknown frame type");
  }
  if (header.length > kMaxPayloadSize) {
    return Status::InvalidArgument("over-length frame");
  }
  if (header.length != payload_size) {
    return Status::InvalidArgument("frame length does not match its type");
  }
  return kHeaderSize + payload_size;
}

// d3t-lint: hot
Result<Frame> Decode(const uint8_t* data, size_t size, size_t* consumed) {
  Result<size_t> total = PeekFrameSize(data, size);
  if (!total.ok()) return total.status();
  const size_t payload_size = *total - kHeaderSize;
  if (size < *total) {
    return Status::IoError("truncated frame payload");
  }

  FrameHeader header;
  std::memcpy(&header, data, kHeaderSize);
  const uint8_t* payload = data + kHeaderSize;
  if (FrameChecksum(header, payload, payload_size) != header.checksum) {
    return Status::IoError("frame checksum mismatch");
  }

  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  std::memcpy(&frame.u, payload, payload_size);
  if (consumed != nullptr) *consumed = *total;
  return frame;
}

}  // namespace d3t::net::wire
