#ifndef D3T_NET_TOPOLOGY_H_
#define D3T_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/time.h"

namespace d3t::net {

/// Index of a node (router, repository or source) in the physical network.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Role a physical node plays in the cooperative-repository architecture.
enum class NodeKind : uint8_t {
  kRouter = 0,
  kRepository = 1,
  kSource = 2,
};

/// An undirected physical link with a fixed propagation+processing delay.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  sim::SimTime delay = 0;  // microseconds
};

/// The physical network: nodes (with roles) and undirected weighted links.
/// This is the substrate the paper generates randomly for its simulations
/// (1 source, 100 repositories, 600 routers in the base case).
class Topology {
 public:
  /// Creates a topology with `node_count` router nodes and no links.
  explicit Topology(size_t node_count);

  size_t node_count() const { return kinds_.size(); }
  size_t link_count() const { return links_.size(); }

  NodeKind kind(NodeId n) const { return kinds_[n]; }
  void set_kind(NodeId n, NodeKind kind);

  /// Adds an undirected link; rejects self-loops, out-of-range endpoints
  /// and negative delays. Parallel links are allowed (routing uses the
  /// cheapest).
  Status AddLink(NodeId a, NodeId b, sim::SimTime delay);

  const std::vector<Link>& links() const { return links_; }

  /// Neighbors of `n` as (peer, delay) pairs.
  const std::vector<std::pair<NodeId, sim::SimTime>>& neighbors(
      NodeId n) const {
    return adjacency_[n];
  }

  /// Ids of all repository nodes, in id order.
  std::vector<NodeId> RepositoryNodes() const;

  /// Id of the unique source node, or kInvalidNode if none/multiple.
  NodeId SourceNode() const;

  /// Ids of all source nodes, in id order (multi-source deployments,
  /// paper §4's extension).
  std::vector<NodeId> SourceNodes() const;

  /// True when every node can reach every other node.
  bool IsConnected() const;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<Link> links_;
  std::vector<std::vector<std::pair<NodeId, sim::SimTime>>> adjacency_;
};

}  // namespace d3t::net

#endif  // D3T_NET_TOPOLOGY_H_
