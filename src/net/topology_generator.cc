#include "net/topology_generator.h"

#include <numeric>
#include <vector>

namespace d3t::net {

Result<Topology> GenerateTopology(const TopologyGeneratorOptions& options,
                                  Rng& rng) {
  if (options.source_count == 0) {
    return Status::InvalidArgument("need at least one source");
  }
  const size_t n = options.router_count + options.repository_count +
                   options.source_count;
  if (options.repository_count == 0) {
    return Status::InvalidArgument("need at least one repository");
  }
  if (n < 2) return Status::InvalidArgument("need at least two nodes");
  if (options.link_delay_mean_ms <= options.link_delay_min_ms ||
      options.link_delay_min_ms <= 0.0) {
    return Status::InvalidArgument("need delay mean > min > 0");
  }

  Topology topo(n);

  auto sample_delay = [&]() {
    return sim::Millis(rng.NextParetoWithMean(options.link_delay_min_ms,
                                              options.link_delay_mean_ms));
  };

  // Random spanning tree: attach each node (in shuffled order) to a
  // uniformly chosen already-attached node. This yields a random
  // recursive tree, whose longish paths model a sparse WAN core.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  for (size_t i = 1; i < n; ++i) {
    const NodeId child = order[i];
    const NodeId parent = order[rng.NextBounded(i)];
    Status s = topo.AddLink(child, parent, sample_delay());
    if (!s.ok()) return s;
  }

  // Shortcut links to bring the repo-to-repo hop count down to the
  // paper's ~10-hop regime.
  const size_t extras =
      static_cast<size_t>(options.extra_edge_fraction * static_cast<double>(n));
  for (size_t i = 0; i < extras; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    if (a == b) continue;  // skip; density target is approximate
    Status s = topo.AddLink(a, b, sample_delay());
    if (!s.ok()) return s;
  }

  // Designate the sources and the repositories among distinct nodes.
  std::vector<NodeId> roles(n);
  std::iota(roles.begin(), roles.end(), 0);
  rng.Shuffle(roles);
  for (size_t i = 0; i < options.source_count; ++i) {
    topo.set_kind(roles[i], NodeKind::kSource);
  }
  for (size_t i = 0; i < options.repository_count; ++i) {
    topo.set_kind(roles[options.source_count + i], NodeKind::kRepository);
  }
  return topo;
}

}  // namespace d3t::net
