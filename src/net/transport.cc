#include "net/transport.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace d3t::net {

void PublishTransportMetrics(obs::Registry& registry, const char* prefix,
                             const TransportMetrics& metrics) {
  const std::string base = std::string(prefix) + ".";
  registry.Add(registry.Counter(base + "frames_tx"), metrics.frames_tx);
  registry.Add(registry.Counter(base + "frames_rx"), metrics.frames_rx);
  registry.Add(registry.Counter(base + "bytes_tx"), metrics.bytes_tx);
  registry.Add(registry.Counter(base + "bytes_rx"), metrics.bytes_rx);
  registry.Add(registry.Counter(base + "backpressure_stalls"),
               metrics.backpressure_stalls);
  registry.Add(registry.Counter(base + "decode_errors"),
               metrics.decode_errors);
  registry.Add(registry.Counter(base + "faults_injected"),
               metrics.faults_injected);
  registry.Add(registry.Counter(base + "frames_dropped"),
               metrics.frames_dropped);
  registry.Add(registry.Counter(base + "reconnects"), metrics.reconnects);
}

// ---------------------------------------------------------------------------
// InProcTransport

InProcTransport::InProcTransport(size_t peer_count, size_t per_peer_capacity)
    : capacity_(per_peer_capacity == 0 ? 1 : per_peer_capacity),
      slots_(peer_count * capacity_),
      rings_(peer_count),
      per_peer_(peer_count) {}

// d3t-lint: hot
Status InProcTransport::Send(PeerId from, PeerId to,
                             const wire::Frame& frame) {
  if (from >= rings_.size() || to >= rings_.size()) {
    return Status::InvalidArgument("peer out of range");
  }
  Ring& ring = rings_[to];
  if (ring.count == capacity_) {
    ++per_peer_[from].backpressure_stalls;
    ++totals_.backpressure_stalls;
    return Status::CapacityExhausted("ring full");
  }
  Slot& slot = slots_[to * capacity_ + (ring.head + ring.count) % capacity_];
  const size_t encoded = wire::Encode(frame, slot.bytes, sizeof(slot.bytes));
  if (encoded == 0) {
    return Status::InvalidArgument("unencodable frame");
  }
  slot.from = from;
  slot.size = static_cast<uint32_t>(encoded);
  ++ring.count;
  ++per_peer_[from].frames_tx;
  per_peer_[from].bytes_tx += encoded;
  ++totals_.frames_tx;
  totals_.bytes_tx += encoded;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::TraceEventKind::kFrameTx, from,
                      static_cast<uint64_t>(frame.type), to);
  }
  return Status::Ok();
}

// d3t-lint: hot
bool InProcTransport::Poll(PeerId self, wire::Frame* out, PeerId* from) {
  if (self >= rings_.size()) return false;
  Ring& ring = rings_[self];
  while (ring.count > 0) {
    const Slot& slot = slots_[self * capacity_ + ring.head];
    ring.head = (ring.head + 1) % capacity_;
    --ring.count;
    Result<wire::Frame> decoded = wire::Decode(slot.bytes, slot.size);
    if (!decoded.ok()) {
      // A slot was encoded by Send and can only fail to decode if its
      // bytes were corrupted in place; count and keep draining.
      ++per_peer_[self].decode_errors;
      ++totals_.decode_errors;
      if (recorder_ != nullptr) {
        recorder_->Record(obs::TraceEventKind::kDecodeError, self, 0, 0,
                          static_cast<uint16_t>(decoded.status().code()));
      }
      continue;
    }
    ++per_peer_[self].frames_rx;
    per_peer_[self].bytes_rx += slot.size;
    ++totals_.frames_rx;
    totals_.bytes_rx += slot.size;
    if (recorder_ != nullptr) {
      recorder_->Record(obs::TraceEventKind::kFrameRx, self,
                        static_cast<uint64_t>(decoded->type), slot.from);
    }
    *out = *decoded;
    if (from != nullptr) *from = slot.from;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// StreamTransport

StreamTransport::StreamTransport(size_t peer_count, size_t per_channel_bytes)
    : channel_bytes_(std::max<size_t>(per_channel_bytes, wire::kMaxFrameSize)),
      inbound_(peer_count),
      per_peer_(peer_count) {}

Status StreamTransport::Connect(PeerId from, PeerId to) {
  if (from >= inbound_.size() || to >= inbound_.size()) {
    return Status::InvalidArgument("peer out of range");
  }
  std::vector<Channel>& channels = inbound_[to];
  for (const Channel& ch : channels) {
    if (ch.from == from) {
      return Status::FailedPrecondition("channel already connected");
    }
  }
  Channel ch;
  ch.from = from;
  ch.ring = ByteRing(channel_bytes_);
  // Ascending sender order keeps Poll's scan deterministic regardless
  // of Connect call order.
  auto pos = std::find_if(
      channels.begin(), channels.end(),
      [from](const Channel& existing) { return existing.from > from; });
  channels.insert(pos, std::move(ch));
  return Status::Ok();
}

StreamTransport::Channel* StreamTransport::FindChannel(PeerId from,
                                                       PeerId to) {
  if (to >= inbound_.size()) return nullptr;
  for (Channel& ch : inbound_[to]) {
    if (ch.from == from) return &ch;
  }
  return nullptr;
}

// d3t-lint: hot
Status StreamTransport::Append(Channel& ch, PeerId from, const uint8_t* data,
                               size_t size) {
  if (!ch.ring.Append(data, size)) {
    ++per_peer_[from].backpressure_stalls;
    ++totals_.backpressure_stalls;
    return Status::CapacityExhausted("channel ring full");
  }
  return Status::Ok();
}

// d3t-lint: hot
Status StreamTransport::Send(PeerId from, PeerId to,
                             const wire::Frame& frame) {
  if (from >= inbound_.size() || to >= inbound_.size()) {
    return Status::InvalidArgument("peer out of range");
  }
  Channel* ch = FindChannel(from, to);
  if (ch == nullptr) {
    return Status::FailedPrecondition("channel not connected");
  }
  uint8_t scratch[wire::kMaxFrameSize];
  const size_t encoded = wire::Encode(frame, scratch, sizeof(scratch));
  if (encoded == 0) {
    return Status::InvalidArgument("unencodable frame");
  }
  Status appended = Append(*ch, from, scratch, encoded);
  if (!appended.ok()) return appended;
  ++per_peer_[from].frames_tx;
  per_peer_[from].bytes_tx += encoded;
  ++totals_.frames_tx;
  totals_.bytes_tx += encoded;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::TraceEventKind::kFrameTx, from,
                      static_cast<uint64_t>(frame.type), to);
  }
  return Status::Ok();
}

Status StreamTransport::SendRaw(PeerId from, PeerId to, const uint8_t* data,
                                size_t size) {
  if (from >= inbound_.size() || to >= inbound_.size()) {
    return Status::InvalidArgument("peer out of range");
  }
  Channel* ch = FindChannel(from, to);
  if (ch == nullptr) {
    return Status::FailedPrecondition("channel not connected");
  }
  return Append(*ch, from, data, size);
}

// d3t-lint: hot
bool StreamTransport::Poll(PeerId self, wire::Frame* out, PeerId* from) {
  if (self >= inbound_.size()) return false;
  for (Channel& ch : inbound_[self]) {
    for (;;) {
      size_t frame_size = 0;
      const FrameReassembler::Outcome outcome =
          FrameReassembler::Next(ch.ring, out, &frame_size);
      if (outcome == FrameReassembler::Outcome::kNeedMore) break;
      if (outcome == FrameReassembler::Outcome::kResync) {
        ++per_peer_[self].decode_errors;
        ++totals_.decode_errors;
        if (recorder_ != nullptr) {
          recorder_->Record(obs::TraceEventKind::kDecodeError, self);
        }
        continue;
      }
      ++per_peer_[self].frames_rx;
      per_peer_[self].bytes_rx += frame_size;
      ++totals_.frames_rx;
      totals_.bytes_rx += frame_size;
      if (recorder_ != nullptr) {
        recorder_->Record(obs::TraceEventKind::kFrameRx, self,
                          static_cast<uint64_t>(out->type), ch.from);
      }
      if (from != nullptr) *from = ch.from;
      return true;
    }
  }
  return false;
}

}  // namespace d3t::net
