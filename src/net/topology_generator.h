#ifndef D3T_NET_TOPOLOGY_GENERATOR_H_
#define D3T_NET_TOPOLOGY_GENERATOR_H_

#include <cstddef>

#include "common/random.h"
#include "common/result.h"
#include "net/topology.h"

namespace d3t::net {

/// Parameters for the random physical-network generator. Defaults follow
/// the paper's base case: 700 nodes = 1 source + 100 repositories + 600
/// routers, per-link delays Pareto-distributed, connected by construction
/// (random spanning tree + shortcut edges).
///
/// Delay calibration note: the paper quotes both "~10 hops between
/// repositories" and "average nominal node-node delay around 20-30 ms"
/// with a Pareto(mean 15 ms, min 2 ms) model. A literal per-link
/// mean-15ms draw over 10-hop paths yields ~150 ms end-to-end, so we
/// keep the heavy-tailed Pareto family but calibrate the per-link
/// parameters (min 1.5 ms, mean 4 ms) so that minimum-delay routing over
/// the generated graph reproduces both quoted numbers: ~10 repo-to-repo
/// hops and a 20-30 ms mean repo-to-repo delay. Both parameters are
/// configurable for sensitivity studies (see DESIGN.md §3).
struct TopologyGeneratorOptions {
  size_t router_count = 600;
  size_t repository_count = 100;
  /// Number of source nodes (paper base case: 1; §4 sketches the
  /// multi-source extension).
  size_t source_count = 1;
  /// Extra shortcut links added on top of the spanning tree, as a
  /// fraction of node count. Tuned so the 700-node network averages
  /// ~10 repo-to-repo hops.
  double extra_edge_fraction = 0.05;
  /// Per-link Pareto delay parameters (milliseconds).
  double link_delay_min_ms = 1.5;
  double link_delay_mean_ms = 4.0;
};

/// Generates a connected random topology: a uniformly random spanning
/// tree over all nodes plus `extra_edge_fraction * n` shortcut links,
/// Pareto per-link delays, one node designated the source and
/// `repository_count` nodes designated repositories (all chosen uniformly
/// at random).
Result<Topology> GenerateTopology(const TopologyGeneratorOptions& options,
                                  Rng& rng);

}  // namespace d3t::net

#endif  // D3T_NET_TOPOLOGY_GENERATOR_H_
