#include "net/delay_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"

namespace d3t::net {

OverlayDelayModel::OverlayDelayModel(size_t count)
    : count_(count),
      delay_(count * count, 0),
      hops_(count * count, 0),
      physical_(count, kInvalidNode) {}

OverlayDelayModel::PackedDelay OverlayDelayModel::PackDelay(
    sim::SimTime delay) {
  assert(delay >= 0 && "pair delays are nonnegative");
  assert(delay <= std::numeric_limits<PackedDelay>::max() &&
         "pair delay overflows the compressed 32-bit store");
  if (delay < 0) return 0;
  if (delay > std::numeric_limits<PackedDelay>::max()) {
    return std::numeric_limits<PackedDelay>::max();
  }
  return static_cast<PackedDelay>(delay);
}

OverlayDelayModel::PackedHops OverlayDelayModel::PackHops(uint32_t hops) {
  assert(hops <= std::numeric_limits<PackedHops>::max() &&
         "pair hop count overflows the compressed 16-bit store");
  return static_cast<PackedHops>(
      std::min<uint32_t>(hops, std::numeric_limits<PackedHops>::max()));
}

Result<OverlayDelayModel> OverlayDelayModel::FromRouting(
    const Topology& topo, const RoutingTables& routing) {
  const NodeId source = topo.SourceNode();
  if (source == kInvalidNode) {
    return Status::FailedPrecondition("topology must have exactly one source");
  }
  return FromRoutingWithSource(topo, routing, source);
}

Result<OverlayDelayModel> OverlayDelayModel::FromRoutingWithSource(
    const Topology& topo, const RoutingTables& routing, NodeId source) {
  if (source >= topo.node_count() ||
      topo.kind(source) != NodeKind::kSource) {
    return Status::InvalidArgument("node is not a source");
  }
  std::vector<NodeId> members;
  members.push_back(source);
  for (NodeId repo : topo.RepositoryNodes()) members.push_back(repo);

  OverlayDelayModel model(members.size());
  model.physical_ = members;
  for (OverlayIndex i = 0; i < members.size(); ++i) {
    if (!routing.HasRow(members[i])) {
      return Status::FailedPrecondition(
          "routing row missing for overlay member");
    }
    for (OverlayIndex j = 0; j < members.size(); ++j) {
      model.delay_[model.Idx(i, j)] =
          PackDelay(routing.Delay(members[i], members[j]));
      model.hops_[model.Idx(i, j)] =
          PackHops(routing.Hops(members[i], members[j]));
    }
  }
  return model;
}

Result<std::vector<OverlayDelayModel>>
OverlayDelayModel::FromTopologyAllSources(const Topology& topo,
                                          size_t worker_threads) {
  const std::vector<NodeId> sources = topo.SourceNodes();
  if (sources.empty()) {
    return Status::FailedPrecondition("topology has no source node");
  }
  const std::vector<NodeId> repos = topo.RepositoryNodes();
  const size_t member_count = repos.size() + 1;

  std::vector<OverlayDelayModel> models;
  models.reserve(sources.size());
  for (NodeId source : sources) {
    OverlayDelayModel model(member_count);
    model.physical_[0] = source;
    for (size_t r = 0; r < repos.size(); ++r) {
      model.physical_[r + 1] = repos[r];
    }
    models.push_back(std::move(model));
  }

  // One row task per distinct member node: a source fills row 0 of its
  // own model; a repository fills row r+1 of every model. Tasks write
  // disjoint rows, so fanning them out over the pool is deterministic
  // regardless of scheduling.
  struct RowTask {
    NodeId node;
    /// Source index owning the row, or SIZE_MAX for a repository row.
    size_t source_index;
    /// Member row the task fills (0 for sources, r+1 for repositories).
    OverlayIndex member_row;
  };
  std::vector<RowTask> tasks;
  tasks.reserve(sources.size() + repos.size());
  for (size_t s = 0; s < sources.size(); ++s) {
    tasks.push_back({sources[s], s, 0});
  }
  for (size_t r = 0; r < repos.size(); ++r) {
    tasks.push_back({repos[r], SIZE_MAX, static_cast<OverlayIndex>(r + 1)});
  }

  struct Scratch {
    std::vector<sim::SimTime> delay;
    std::vector<uint32_t> hops;
  };
  auto run_task = [&](const RowTask& task, Scratch& scratch) -> Status {
    RoutingTables::ShortestPathsFrom(topo, task.node, scratch.delay,
                                     scratch.hops);
    for (NodeId j = 0; j < topo.node_count(); ++j) {
      if (scratch.delay[j] >= RoutingTables::kUnreachableDelay) {
        return Status::FailedPrecondition("topology is disconnected");
      }
    }
    const size_t first = task.source_index == SIZE_MAX ? 0 : task.source_index;
    const size_t last =
        task.source_index == SIZE_MAX ? models.size() : task.source_index + 1;
    for (size_t s = first; s < last; ++s) {
      OverlayDelayModel& model = models[s];
      const size_t base = model.Idx(task.member_row, 0);
      model.delay_[base] = PackDelay(scratch.delay[sources[s]]);
      model.hops_[base] = PackHops(scratch.hops[sources[s]]);
      for (size_t r = 0; r < repos.size(); ++r) {
        model.delay_[base + r + 1] = PackDelay(scratch.delay[repos[r]]);
        model.hops_[base + r + 1] = PackHops(scratch.hops[repos[r]]);
      }
    }
    return Status::Ok();
  };

  if (worker_threads <= 1 || tasks.size() <= 1) {
    Scratch scratch;
    for (const RowTask& task : tasks) {
      D3T_RETURN_IF_ERROR(run_task(task, scratch));
    }
    return models;
  }

  // Per-row statuses keep the first (lowest-row) error deterministic.
  std::vector<Status> statuses(tasks.size(), Status::Ok());
  ThreadPool pool(std::min(worker_threads, tasks.size()));
  const size_t shard_count = pool.thread_count();
  for (size_t shard = 0; shard < shard_count; ++shard) {
    pool.Submit([&, shard] {
      Scratch scratch;
      for (size_t i = shard; i < tasks.size(); i += shard_count) {
        statuses[i] = run_task(tasks[i], scratch);
      }
    });
  }
  pool.Wait();
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }
  return models;
}

OverlayDelayModel OverlayDelayModel::Uniform(size_t member_count,
                                             sim::SimTime delay,
                                             uint32_t hops) {
  OverlayDelayModel model(member_count);
  const PackedDelay packed_delay = PackDelay(delay);
  const PackedHops packed_hops = PackHops(hops);
  for (OverlayIndex i = 0; i < member_count; ++i) {
    for (OverlayIndex j = 0; j < member_count; ++j) {
      if (i == j) continue;
      model.delay_[model.Idx(i, j)] = packed_delay;
      model.hops_[model.Idx(i, j)] = packed_hops;
    }
  }
  return model;
}

StreamingStats OverlayDelayModel::PairDelayStats() const {
  StreamingStats stats;
  for (OverlayIndex i = 0; i < count_; ++i) {
    for (OverlayIndex j = 0; j < count_; ++j) {
      if (i == j) continue;
      stats.Add(static_cast<double>(delay_[Idx(i, j)]));
    }
  }
  return stats;
}

double OverlayDelayModel::MeanPairHops() const {
  StreamingStats stats;
  for (OverlayIndex i = 0; i < count_; ++i) {
    for (OverlayIndex j = 0; j < count_; ++j) {
      if (i == j) continue;
      stats.Add(static_cast<double>(hops_[Idx(i, j)]));
    }
  }
  return stats.mean();
}

OverlayDelayModel OverlayDelayModel::ScaledToMeanDelay(
    sim::SimTime target_mean) const {
  OverlayDelayModel out = *this;
  const double current = PairDelayStats().mean();
  if (current <= 0.0 || target_mean <= 0) {
    for (auto& d : out.delay_) d = 0;
    if (target_mean <= 0) return out;
    // Degenerate input model: fall back to a uniform target delay.
    const PackedDelay packed = PackDelay(target_mean);
    for (OverlayIndex i = 0; i < count_; ++i) {
      for (OverlayIndex j = 0; j < count_; ++j) {
        if (i != j) out.delay_[Idx(i, j)] = packed;
      }
    }
    return out;
  }
  const double factor = static_cast<double>(target_mean) / current;
  for (auto& d : out.delay_) {
    d = PackDelay(static_cast<sim::SimTime>(
        std::llround(static_cast<double>(d) * factor)));
  }
  return out;
}

}  // namespace d3t::net
