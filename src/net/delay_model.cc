#include "net/delay_model.h"

#include <cmath>

namespace d3t::net {

OverlayDelayModel::OverlayDelayModel(size_t count)
    : count_(count),
      delay_(count * count, 0),
      hops_(count * count, 0),
      physical_(count, kInvalidNode) {}

Result<OverlayDelayModel> OverlayDelayModel::FromRouting(
    const Topology& topo, const RoutingTables& routing) {
  const NodeId source = topo.SourceNode();
  if (source == kInvalidNode) {
    return Status::FailedPrecondition("topology must have exactly one source");
  }
  return FromRoutingWithSource(topo, routing, source);
}

Result<OverlayDelayModel> OverlayDelayModel::FromRoutingWithSource(
    const Topology& topo, const RoutingTables& routing, NodeId source) {
  if (source >= topo.node_count() ||
      topo.kind(source) != NodeKind::kSource) {
    return Status::InvalidArgument("node is not a source");
  }
  std::vector<NodeId> members;
  members.push_back(source);
  for (NodeId repo : topo.RepositoryNodes()) members.push_back(repo);

  OverlayDelayModel model(members.size());
  model.physical_ = members;
  for (OverlayIndex i = 0; i < members.size(); ++i) {
    if (!routing.HasRow(members[i])) {
      return Status::FailedPrecondition(
          "routing row missing for overlay member");
    }
    for (OverlayIndex j = 0; j < members.size(); ++j) {
      model.delay_[model.Idx(i, j)] = routing.Delay(members[i], members[j]);
      model.hops_[model.Idx(i, j)] = routing.Hops(members[i], members[j]);
    }
  }
  return model;
}

OverlayDelayModel OverlayDelayModel::Uniform(size_t member_count,
                                             sim::SimTime delay,
                                             uint32_t hops) {
  OverlayDelayModel model(member_count);
  for (OverlayIndex i = 0; i < member_count; ++i) {
    for (OverlayIndex j = 0; j < member_count; ++j) {
      if (i == j) continue;
      model.delay_[model.Idx(i, j)] = delay;
      model.hops_[model.Idx(i, j)] = hops;
    }
  }
  return model;
}

StreamingStats OverlayDelayModel::PairDelayStats() const {
  StreamingStats stats;
  for (OverlayIndex i = 0; i < count_; ++i) {
    for (OverlayIndex j = 0; j < count_; ++j) {
      if (i == j) continue;
      stats.Add(static_cast<double>(delay_[Idx(i, j)]));
    }
  }
  return stats;
}

double OverlayDelayModel::MeanPairHops() const {
  StreamingStats stats;
  for (OverlayIndex i = 0; i < count_; ++i) {
    for (OverlayIndex j = 0; j < count_; ++j) {
      if (i == j) continue;
      stats.Add(static_cast<double>(hops_[Idx(i, j)]));
    }
  }
  return stats.mean();
}

OverlayDelayModel OverlayDelayModel::ScaledToMeanDelay(
    sim::SimTime target_mean) const {
  OverlayDelayModel out = *this;
  const double current = PairDelayStats().mean();
  if (current <= 0.0 || target_mean <= 0) {
    for (auto& d : out.delay_) d = 0;
    if (target_mean <= 0) return out;
    // Degenerate input model: fall back to a uniform target delay.
    for (OverlayIndex i = 0; i < count_; ++i) {
      for (OverlayIndex j = 0; j < count_; ++j) {
        if (i != j) out.delay_[Idx(i, j)] = target_mean;
      }
    }
    return out;
  }
  const double factor = static_cast<double>(target_mean) / current;
  for (auto& d : out.delay_) {
    d = static_cast<sim::SimTime>(std::llround(static_cast<double>(d) *
                                               factor));
  }
  return out;
}

}  // namespace d3t::net
