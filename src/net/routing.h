#ifndef D3T_NET_ROUTING_H_
#define D3T_NET_ROUTING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "net/topology.h"
#include "sim/time.h"

namespace d3t::net {

/// Dense all-pairs shortest-path tables (delay and hop count). The paper
/// computes routing tables with Floyd-Warshall; for the 2100-node
/// scalability runs we provide an equivalent Dijkstra-based computation
/// restricted to the rows that matter (source + repositories).
class RoutingTables {
 public:
  RoutingTables(size_t node_count);

  sim::SimTime Delay(NodeId from, NodeId to) const {
    return delay_[Index(from, to)];
  }
  uint32_t Hops(NodeId from, NodeId to) const {
    return hops_[Index(from, to)];
  }

  /// True when a row was computed (always true for Floyd-Warshall; only
  /// for requested sources with Dijkstra).
  bool HasRow(NodeId from) const { return row_valid_[from]; }

  size_t node_count() const { return row_valid_.size(); }

  /// Full Floyd-Warshall APSP exactly as in the paper (O(V^3)).
  /// Fails if the topology is disconnected.
  static Result<RoutingTables> FloydWarshall(const Topology& topo);

  /// Runs Dijkstra from each node in `rows` only; other rows stay
  /// invalid. O(|rows| * E log V) — used for large networks.
  static Result<RoutingTables> DijkstraRows(const Topology& topo,
                                            const std::vector<NodeId>& rows);

 private:
  size_t Index(NodeId from, NodeId to) const {
    return static_cast<size_t>(from) * row_valid_.size() + to;
  }

  void RunDijkstraFrom(const Topology& topo, NodeId src);

  std::vector<sim::SimTime> delay_;
  std::vector<uint32_t> hops_;
  std::vector<bool> row_valid_;
};

}  // namespace d3t::net

#endif  // D3T_NET_ROUTING_H_
