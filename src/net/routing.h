#ifndef D3T_NET_ROUTING_H_
#define D3T_NET_ROUTING_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "net/topology.h"
#include "sim/time.h"

namespace d3t::net {

/// All-pairs shortest-path tables (delay and hop count), stored as a
/// *row table*: only rows that were actually computed are allocated.
/// The paper computes routing with Floyd-Warshall (which populates every
/// row); for large networks the equivalent Dijkstra-based computation
/// restricted to the rows that matter (source + repositories) keeps
/// memory proportional to |rows| x n instead of n x n. Callers that
/// cannot afford even that should use ShortestPathsFrom to stream one
/// row at a time through caller-owned scratch.
class RoutingTables {
 public:
  /// Sentinel delay of an unreachable (or never computed) pair. Chosen
  /// well below kSimTimeMax so sums of two sentinels cannot overflow.
  static constexpr sim::SimTime kUnreachableDelay = sim::kSimTimeMax / 4;
  /// Sentinel hop count of an unreachable (or never computed) pair.
  static constexpr uint32_t kUnreachableHops = UINT32_MAX;

  explicit RoutingTables(size_t node_count);

  /// Unchecked row queries: `from` must be a computed row (always true
  /// after Floyd-Warshall; only for requested sources with Dijkstra) and
  /// `to` in range. Debug builds assert; release builds return the
  /// unreachable sentinels for an uncomputed row rather than reading out
  /// of bounds. Use the Checked variants when the row's validity is not
  /// known statically.
  sim::SimTime Delay(NodeId from, NodeId to) const {
    assert(from < rows_.size() && "routing row out of range");
    assert(to < rows_.size() && "routing column out of range");
    assert(!rows_[from].delay.empty() && "querying an unrouted row");
    if (from >= rows_.size() || to >= rows_.size() ||
        rows_[from].delay.empty()) {
      return kUnreachableDelay;
    }
    return rows_[from].delay[to];
  }
  uint32_t Hops(NodeId from, NodeId to) const {
    assert(from < rows_.size() && "routing row out of range");
    assert(to < rows_.size() && "routing column out of range");
    assert(!rows_[from].hops.empty() && "querying an unrouted row");
    if (from >= rows_.size() || to >= rows_.size() ||
        rows_[from].hops.empty()) {
      return kUnreachableHops;
    }
    return rows_[from].hops[to];
  }

  /// Checked queries: OutOfRange for an endpoint beyond node_count(),
  /// FailedPrecondition for a row that was never computed.
  Result<sim::SimTime> CheckedDelay(NodeId from, NodeId to) const;
  Result<uint32_t> CheckedHops(NodeId from, NodeId to) const;

  /// True when a row was computed (always true for Floyd-Warshall; only
  /// for requested sources with Dijkstra).
  bool HasRow(NodeId from) const {
    return from < rows_.size() && !rows_[from].delay.empty();
  }

  size_t node_count() const { return rows_.size(); }

  /// Full Floyd-Warshall APSP exactly as in the paper (O(V^3)); every
  /// row is allocated. Fails if the topology is disconnected.
  static Result<RoutingTables> FloydWarshall(const Topology& topo);

  /// Runs Dijkstra from each node in `rows` only; other rows are never
  /// allocated. O(|rows| * E log V) time and O(|rows| * V) memory — used
  /// for large networks. Duplicate row requests are computed once.
  static Result<RoutingTables> DijkstraRows(const Topology& topo,
                                            const std::vector<NodeId>& rows);

  /// Streaming single-row shortest paths: fills `delay`/`hops` (resized
  /// to the node count, unreachable entries left at the sentinels) with
  /// the shortest paths from `src`, allocating nothing beyond the two
  /// caller-owned buffers. The memory-bounded building block for
  /// per-member delay-model extraction on 10k+ repository networks.
  /// `src` must be in range.
  static void ShortestPathsFrom(const Topology& topo, NodeId src,
                                std::vector<sim::SimTime>& delay,
                                std::vector<uint32_t>& hops);

 private:
  /// One computed row; `delay`/`hops` are empty until routed.
  struct Row {
    std::vector<sim::SimTime> delay;
    std::vector<uint32_t> hops;
  };

  /// Allocates (and sentinel-fills) row `from` if absent.
  Row& EnsureRow(NodeId from);

  std::vector<Row> rows_;
};

}  // namespace d3t::net

#endif  // D3T_NET_ROUTING_H_
