#ifndef D3T_NET_FRAME_REASSEMBLER_H_
#define D3T_NET_FRAME_REASSEMBLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/wire.h"

namespace d3t::net {

/// Fixed-capacity byte ring used as a userspace send/recv buffer by the
/// byte-stream transports (StreamTransport's in-process channels and
/// SocketTransport's per-peer TCP buffers). Capacity is fixed at
/// construction; the mutation paths never touch the allocator — a ring
/// that cannot take more bytes refuses them, and the caller counts the
/// stall.
class ByteRing {
 public:
  ByteRing() = default;
  explicit ByteRing(size_t capacity) : bytes_(capacity) {}

  size_t capacity() const { return bytes_.size(); }
  size_t size() const { return count_; }
  size_t free_space() const { return bytes_.size() - count_; }
  bool empty() const { return count_ == 0; }

  /// Appends all `size` bytes or none: false when they do not fit.
  /// Nothing is ever partially written.
  bool Append(const uint8_t* data, size_t size);

  /// Copies up to `max` readable bytes into `out`, linearized across
  /// the wrap, without consuming them. Returns the bytes copied.
  size_t PeekLinear(uint8_t* out, size_t max) const;

  /// Exposes the largest contiguous readable span at the front without
  /// copying (`*data` points into the ring). Returns its length — the
  /// natural unit for a socket write; a second call after Consume()
  /// reaches the wrapped remainder.
  size_t ContiguousFront(const uint8_t** data) const;

  /// Exposes the largest contiguous writable span at the tail without
  /// copying (`*data` points into the ring). Returns its length — the
  /// natural unit for a socket read; commit what was filled with Grow().
  size_t ContiguousBack(uint8_t** data);

  /// Commits `n` bytes previously filled in place via ContiguousBack().
  void Grow(size_t n);

  /// Discards `n` readable bytes from the front (`n` <= size()).
  void Consume(size_t n);

 private:
  size_t head_ = 0;
  size_t count_ = 0;
  std::vector<uint8_t> bytes_;
};

/// Header-driven frame reassembly over a ByteRing: the one deframing
/// loop every byte-stream transport shares. The receiver recovers frame
/// boundaries from wire headers alone (PeekFrameSize), waits on partial
/// frames, and resyncs byte by byte past corruption — exactly what a
/// TCP reader does, independent of how the bytes arrived (in-process
/// ring, loopback socket, a file replayed through a ring). Extracted
/// from StreamTransport so SocketTransport deframes with the same code,
/// not a copy of it.
class FrameReassembler {
 public:
  enum class Outcome {
    /// `*out` holds the next frame; its bytes were consumed.
    kFrame,
    /// Empty ring or partial frame: wait for more bytes. Untouched.
    kNeedMore,
    /// Corrupt header or checksum-failing payload: slid one byte to
    /// hunt for the next valid header. The caller counts it as a
    /// decode error and retries.
    kResync,
  };

  /// One deframing step against the front of `ring`. On kFrame,
  /// `frame_bytes` (when non-null) receives the encoded size consumed.
  static Outcome Next(ByteRing& ring, wire::Frame* out, size_t* frame_bytes);
};

}  // namespace d3t::net

#endif  // D3T_NET_FRAME_REASSEMBLER_H_
