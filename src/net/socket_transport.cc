#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>

namespace d3t::net {
namespace {

constexpr size_t kPreambleSize = 8;
constexpr int kListenBacklog = 64;
/// An accepted connection that has not finished its preamble by this
/// deadline is dropped — a stray connector must not wedge the acceptor.
constexpr int64_t kPreambleDeadlineMs = 5000;
/// Per-attempt bound on the nonblocking connect completing.
constexpr int kConnectAttemptTimeoutMs = 1000;

void EncodePreamble(uint32_t peer, uint8_t* out) {
  std::memcpy(out, &kSocketPreambleMagic, 4);
  std::memcpy(out + 4, &peer, 4);
}

/// Maps an errno from a channel operation onto the transport's error
/// taxonomy: the well-known peer-death errnos get stable spellings that
/// tests and operators can match on; anything else keeps strerror's.
/// Cold path by design — Send/Poll reach here only when a channel dies.
Status SocketErrorStatus(const char* what, int err, PeerId peer) {
  const char* detail = nullptr;
  switch (err) {
    case ECONNREFUSED:
      detail = "connection refused";
      break;
    case ECONNRESET:
      detail = "connection reset by peer";
      break;
    case EPIPE:
      detail = "broken pipe";
      break;
    case ETIMEDOUT:
      detail = "connection timed out";
      break;
    default:
      detail = strerror(err);
      break;
  }
  std::string msg(what);
  msg += ": ";
  msg += detail;
  msg += " (peer ";
  msg += std::to_string(peer);
  msg += ")";
  return Status::IoError(msg);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return SocketErrorStatus("fcntl(O_NONBLOCK)", errno, kInvalidPeerId);
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  // Frames are small and latency-sensitive; Nagle would batch them.
  // Best effort: a transport that merely coalesces is still correct.
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

int64_t MonotonicMillis() {
  timespec ts{};
  // d3t-lint: allow(entropy) physical-time socket deadlines only; never feeds simulation state
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000000;
}

void SleepMillis(int ms) {
  if (ms <= 0) return;
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  // d3t-lint: allow(entropy) connect-retry backoff is physical time by nature; never feeds simulation state
  nanosleep(&ts, nullptr);
}

Result<int> CreateLoopbackListener(uint16_t* port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return SocketErrorStatus("socket", errno, kInvalidPeerId);
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(0);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    close(fd);
    return SocketErrorStatus("bind", err, kInvalidPeerId);
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int err = errno;
    close(fd);
    return SocketErrorStatus("getsockname", err, kInvalidPeerId);
  }
  if (listen(fd, kListenBacklog) < 0) {
    const int err = errno;
    close(fd);
    return SocketErrorStatus("listen", err, kInvalidPeerId);
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  if (port != nullptr) *port = ntohs(addr.sin_port);
  return fd;
}

SocketTransport::SocketTransport(size_t peer_count, PeerId self,
                                 SocketOptions options)
    : self_(self),
      options_(options),
      ring_bytes_(std::max(options.ring_bytes, wire::kMaxFrameSize)),
      out_(peer_count),
      in_(peer_count),
      per_peer_(peer_count) {}

SocketTransport::~SocketTransport() {
  for (OutChannel& ch : out_) {
    if (ch.fd >= 0) close(ch.fd);
  }
  for (InChannel& ch : in_) {
    if (ch.fd >= 0) close(ch.fd);
  }
  for (PendingAccept& p : pending_) {
    if (p.fd >= 0) close(p.fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
}

Status SocketTransport::Listen() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("already listening");
  }
  uint16_t port = 0;
  Result<int> fd = CreateLoopbackListener(&port);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  port_ = port;
  return Status::Ok();
}

Status SocketTransport::AdoptListener(int listen_fd, uint16_t listen_port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("already listening");
  }
  if (listen_fd < 0) {
    return Status::InvalidArgument("adopting an invalid listener fd");
  }
  listen_fd_ = listen_fd;
  port_ = listen_port;
  return Status::Ok();
}

Result<int> SocketTransport::Dial(PeerId peer, uint16_t peer_port) {
  int backoff = std::max(options_.backoff_initial_ms, 1);
  int last_err = ECONNREFUSED;
  const int attempts = std::max(options_.connect_attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      SleepMillis(backoff);
      backoff = std::min(backoff * 2, options_.backoff_max_ms);
    }
    const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return SocketErrorStatus("socket", errno, peer);
    }
    Status nb = SetNonBlocking(fd);
    if (!nb.ok()) {
      close(fd);
      return nb;
    }
    sockaddr_in addr = LoopbackAddr(peer_port);
    int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = poll(&pfd, 1, kConnectAttemptTimeoutMs);
      if (rc <= 0) {
        last_err = (rc == 0) ? ETIMEDOUT : errno;
        close(fd);
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
        so_error = errno;
      }
      if (so_error != 0) {
        last_err = so_error;
        close(fd);
        continue;
      }
    } else if (rc < 0) {
      last_err = errno;
      close(fd);
      continue;
    }

    // Connected. Identify ourselves; 8 bytes into a fresh socket buffer
    // cannot stall for long, but handle partial writes anyway.
    SetNoDelay(fd);
    if (options_.sndbuf_bytes > 0) {
      (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                       sizeof(options_.sndbuf_bytes));
    }
    uint8_t preamble[kPreambleSize];
    EncodePreamble(self_, preamble);
    size_t sent = 0;
    bool failed = false;
    while (sent < kPreambleSize) {
      const ssize_t n = send(fd, preamble + sent, kPreambleSize - sent,
                             MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        if (poll(&pfd, 1, kConnectAttemptTimeoutMs) > 0) continue;
        last_err = ETIMEDOUT;
        failed = true;
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      last_err = errno;
      failed = true;
      break;
    }
    if (failed) {
      close(fd);
      continue;
    }
    return fd;
  }
  return SocketErrorStatus("connect failed", last_err, peer);
}

Status SocketTransport::ConnectPeer(PeerId peer, uint16_t peer_port) {
  if (peer >= out_.size()) {
    return Status::InvalidArgument("peer out of range");
  }
  if (peer == self_) {
    return Status::InvalidArgument("socket channel to self");
  }
  OutChannel& ch = out_[peer];
  if (ch.open()) {
    return Status::FailedPrecondition("channel already connected");
  }
  Result<int> fd = Dial(peer, peer_port);
  if (!fd.ok()) return fd.status();
  ch.fd = *fd;
  ch.tx = ByteRing(ring_bytes_);
  ch.error = Status::Ok();
  ch.port = peer_port;
  ch.reconnects_left = std::max(options_.reconnect_attempts, 0);
  return Status::Ok();
}

Status SocketTransport::CloseSend(PeerId peer) {
  if (peer >= out_.size()) {
    return Status::InvalidArgument("peer out of range");
  }
  OutChannel& ch = out_[peer];
  if (!ch.open()) {
    return ch.error.ok() ? Status::FailedPrecondition("channel not connected")
                         : ch.error;
  }
  // Drain what we buffered before the FIN; a bounded wait per round so a
  // dead peer cannot wedge shutdown.
  const int64_t deadline = MonotonicMillis() + kPreambleDeadlineMs;
  while (!ch.tx.empty()) {
    Status flushed = FlushOut(peer);
    if (!flushed.ok()) return flushed;
    if (ch.tx.empty()) break;
    if (MonotonicMillis() >= deadline) {
      return SocketErrorStatus("flush before close", ETIMEDOUT, peer);
    }
    pollfd pfd{ch.fd, POLLOUT, 0};
    (void)poll(&pfd, 1, 50);
  }
  shutdown(ch.fd, SHUT_WR);
  return Status::Ok();
}

void SocketTransport::StickChannelError(const Status& error) {
  if (channel_status_.ok() && !error.ok()) {
    channel_status_ = error;
  }
}

void SocketTransport::AcceptPending() {
  if (listen_fd_ >= 0) {
    for (;;) {
      const int fd = accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN, or a transient we retry next round
      SetNoDelay(fd);
      PendingAccept p;
      p.fd = fd;
      p.deadline_ms = MonotonicMillis() + kPreambleDeadlineMs;
      pending_.push_back(p);
    }
  }

  // Read preambles; register completed channels, drop strays.
  for (PendingAccept& p : pending_) {
    while (p.have < kPreambleSize) {
      const ssize_t n =
          recv(p.fd, p.preamble + p.have, kPreambleSize - p.have, 0);
      if (n > 0) {
        p.have += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error before identifying — a stray; drop below.
      p.have = 0;
      close(p.fd);
      p.fd = -1;
      break;
    }
    if (p.fd >= 0 && p.have < kPreambleSize &&
        MonotonicMillis() >= p.deadline_ms) {
      close(p.fd);
      p.fd = -1;
    }
    if (p.fd < 0 || p.have < kPreambleSize) continue;

    uint32_t magic = 0;
    uint32_t peer = 0;
    std::memcpy(&magic, p.preamble, 4);
    std::memcpy(&peer, p.preamble + 4, 4);
    if (magic != kSocketPreambleMagic || peer >= in_.size() ||
        peer == self_) {
      // Mis-addressed connector: a decode failure at the channel level,
      // counted like any corrupt inbound bytes.
      ++totals_.decode_errors;
      close(p.fd);
      p.fd = -1;
      continue;
    }
    InChannel& ch = in_[peer];
    if (ch.open()) {
      if (options_.reconnect_attempts == 0) {
        // Duplicate connector while the original is healthy: counted
        // and dropped (PR 8 taxonomy).
        ++totals_.decode_errors;
        close(p.fd);
        p.fd = -1;
        continue;
      }
      // Reconnect regime: a second connector for a live channel means
      // the old socket is dying (peer crashed and was restarted before
      // we read its EOF). Park the replacement until FillIn notices.
      continue;
    }
    if (!ch.rx.empty()) {
      // The old socket closed with whole frames still queued in its rx
      // ring: park the reconnection (preamble already read) until Poll
      // drains them, so no received frame is thrown away. (Poll clears
      // a dead channel's torn tail bytes, so the ring does empty.)
      continue;
    }
    ch.fd = p.fd;
    ch.rx = ByteRing(ring_bytes_);
    ch.eof = false;
    ch.failed = false;
    p.fd = -1;  // ownership moved to the channel
  }
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [](const PendingAccept& p) {
                                  return p.fd < 0;
                                }),
                 pending_.end());
}

Status SocketTransport::FlushOut(PeerId to) {
  OutChannel& ch = out_[to];
  if (!ch.error.ok()) return ch.error;
  if (!ch.open()) return Status::Ok();
  while (!ch.tx.empty()) {
    const uint8_t* data = nullptr;
    const size_t n = ch.tx.ContiguousFront(&data);
    const ssize_t sent = send(ch.fd, data, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent > 0) {
      ch.tx.Consume(static_cast<size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    const int send_err = errno;
    close(ch.fd);
    ch.fd = -1;
    if (ch.reconnects_left > 0) {
      // Opt-in recovery (SocketOptions::reconnect_attempts): redial the
      // remembered port instead of going sticky. The bytes the kernel
      // already took are gone and the new stream may resume mid-frame —
      // the receiver resyncs past the torn bytes and the session layer
      // resubscribes for the lost content.
      Result<int> fd = Dial(to, ch.port);
      if (fd.ok()) {
        --ch.reconnects_left;
        ch.fd = *fd;
        ++per_peer_[to].reconnects;
        ++totals_.reconnects;
        continue;
      }
      ch.error = fd.status();
    } else {
      ch.error = SocketErrorStatus("send failed", send_err, to);
    }
    StickChannelError(ch.error);
    return ch.error;
  }
  return Status::Ok();
}

void SocketTransport::FillIn(PeerId peer) {
  InChannel& ch = in_[peer];
  if (!ch.open() || ch.eof || ch.failed) return;
  for (;;) {
    uint8_t* space = nullptr;
    const size_t n = ch.rx.ContiguousBack(&space);
    if (n == 0) break;  // rx ring full — TCP flow control takes over
    const ssize_t got = recv(ch.fd, space, n, MSG_DONTWAIT);
    if (got > 0) {
      ch.rx.Grow(static_cast<size_t>(got));
      continue;
    }
    if (got == 0) {
      // Peer finished (FIN). Whether that is clean depends on the ring
      // holding a whole number of frames — Poll decides when it drains.
      ch.eof = true;
      close(ch.fd);
      ch.fd = -1;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ch.failed = true;
    Status error = SocketErrorStatus("recv failed", errno, peer);
    close(ch.fd);
    ch.fd = -1;
    // Under the reconnect regime a reset inbound stream is expected —
    // the peer redials and AcceptPending adopts the replacement — so
    // the failure stays a per-channel event, not a sticky endpoint
    // error. Default (0) keeps PR 8's precise terminal taxonomy.
    if (options_.reconnect_attempts == 0) StickChannelError(error);
    break;
  }
}

// d3t-lint: hot
Status SocketTransport::Send(PeerId from, PeerId to,
                             const wire::Frame& frame) {
  if (from != self_) {
    return Status::InvalidArgument(
        "socket transport sends only as its own peer id");
  }
  if (to >= out_.size()) {
    return Status::InvalidArgument("peer out of range");
  }
  OutChannel& ch = out_[to];
  if (!ch.error.ok()) return ch.error;
  if (!ch.open()) {
    return Status::FailedPrecondition("channel not connected");
  }
  uint8_t scratch[wire::kMaxFrameSize];
  const size_t encoded = wire::Encode(frame, scratch, sizeof(scratch));
  if (encoded == 0) {
    return Status::InvalidArgument("unencodable frame");
  }
  if (ch.tx.free_space() < encoded) {
    // Ring full: push buffered bytes at the kernel once, then either
    // admit the frame or report a counted stall for the caller to
    // retry. Never grow, never block.
    Status flushed = FlushOut(to);
    if (!flushed.ok()) return flushed;
    if (ch.tx.free_space() < encoded) {
      ++per_peer_[to].backpressure_stalls;
      ++totals_.backpressure_stalls;
      return Status::CapacityExhausted("socket tx ring full");
    }
  }
  (void)ch.tx.Append(scratch, encoded);
  ++per_peer_[to].frames_tx;
  per_peer_[to].bytes_tx += encoded;
  ++totals_.frames_tx;
  totals_.bytes_tx += encoded;
  if (recorder_ != nullptr) {
    recorder_->Record(obs::TraceEventKind::kFrameTx, from,
                      static_cast<uint64_t>(frame.type), to);
  }
  return FlushOut(to);
}

// d3t-lint: hot
bool SocketTransport::Poll(PeerId self, wire::Frame* out, PeerId* from) {
  if (self != self_) return false;
  AcceptPending();
  for (PeerId peer = 0; peer < in_.size(); ++peer) {
    FillIn(peer);
    InChannel& ch = in_[peer];
    for (;;) {
      size_t frame_size = 0;
      const FrameReassembler::Outcome outcome =
          FrameReassembler::Next(ch.rx, out, &frame_size);
      if (outcome == FrameReassembler::Outcome::kNeedMore) {
        if (ch.eof && !ch.failed && !ch.rx.empty()) {
          // FIN landed inside a frame: the sender died mid-write.
          ch.failed = true;
          ++per_peer_[peer].decode_errors;
          ++totals_.decode_errors;
          if (options_.reconnect_attempts == 0) {
            StickChannelError(
                SocketErrorStatus("half-closed mid-frame", ECONNRESET, peer));
          }
        }
        if (options_.reconnect_attempts > 0 && ch.failed && !ch.open() &&
            !ch.rx.empty()) {
          // Torn tail of a dead socket: those bytes can never complete a
          // frame, and AcceptPending defers adopting the peer's redialed
          // replacement until the ring is empty — drop them.
          ch.rx.Consume(ch.rx.size());
        }
        break;
      }
      if (outcome == FrameReassembler::Outcome::kResync) {
        ++per_peer_[peer].decode_errors;
        ++totals_.decode_errors;
        if (recorder_ != nullptr) {
          recorder_->Record(obs::TraceEventKind::kDecodeError, self);
        }
        continue;
      }
      ++per_peer_[peer].frames_rx;
      per_peer_[peer].bytes_rx += frame_size;
      ++totals_.frames_rx;
      totals_.bytes_rx += frame_size;
      if (recorder_ != nullptr) {
        recorder_->Record(obs::TraceEventKind::kFrameRx, self,
                          static_cast<uint64_t>(out->type), peer);
      }
      if (from != nullptr) *from = peer;
      return true;
    }
  }
  return false;
}

Status SocketTransport::Pump() {
  AcceptPending();
  for (PeerId peer = 0; peer < out_.size(); ++peer) {
    OutChannel& ch = out_[peer];
    if (ch.open() && !ch.tx.empty()) {
      (void)FlushOut(peer);  // failure is sticky; reported below
    }
  }
  for (PeerId peer = 0; peer < in_.size(); ++peer) {
    FillIn(peer);
  }
  return channel_status_;
}

Status SocketTransport::WaitIo(int timeout_ms) {
  const int64_t deadline = MonotonicMillis() + timeout_ms;
  for (;;) {
    pollfd fds[3 * 64];
    size_t n = 0;
    const size_t cap = sizeof(fds) / sizeof(fds[0]);
    if (listen_fd_ >= 0 && n < cap) {
      fds[n++] = pollfd{listen_fd_, POLLIN, 0};
    }
    for (const PendingAccept& p : pending_) {
      if (p.fd >= 0 && n < cap) fds[n++] = pollfd{p.fd, POLLIN, 0};
    }
    for (const InChannel& ch : in_) {
      if (ch.open() && !ch.eof && !ch.failed && ch.rx.free_space() > 0 &&
          n < cap) {
        fds[n++] = pollfd{ch.fd, POLLIN, 0};
      }
    }
    for (const OutChannel& ch : out_) {
      if (ch.open() && !ch.tx.empty() && n < cap) {
        fds[n++] = pollfd{ch.fd, POLLOUT, 0};
      }
    }
    const int64_t remaining = deadline - MonotonicMillis();
    if (remaining <= 0) {
      return Status::IoError("socket wait timed out");
    }
    if (n == 0) {
      // Nothing to wait on: no listener, no live channels. Sleeping the
      // timeout away would just hide a wiring bug.
      return Status::FailedPrecondition("no sockets to wait on");
    }
    const int rc = poll(fds, static_cast<nfds_t>(n),
                        static_cast<int>(std::min<int64_t>(remaining, 60000)));
    if (rc > 0) return Status::Ok();
    if (rc == 0) {
      return Status::IoError("socket wait timed out");
    }
    if (errno == EINTR) continue;
    return SocketErrorStatus("poll", errno, kInvalidPeerId);
  }
}

bool SocketTransport::drained() const {
  if (!pending_.empty()) return false;
  for (const InChannel& ch : in_) {
    if (ch.open()) return false;
  }
  return true;
}

size_t SocketTransport::pending_tx_bytes() const {
  size_t total = 0;
  for (const OutChannel& ch : out_) total += ch.tx.size();
  return total;
}

}  // namespace d3t::net
