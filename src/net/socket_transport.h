#ifndef D3T_NET_SOCKET_TRANSPORT_H_
#define D3T_NET_SOCKET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/frame_reassembler.h"
#include "net/transport.h"

namespace d3t::net {

/// Monotonic wall-clock milliseconds. Confined here deliberately: the
/// socket layer is the ONE place in src/ that may read a clock —
/// connect backoff, I/O deadlines and child-reaping timeouts are
/// physical-time concerns that never feed simulation-visible state.
/// Everything else (serve::Cluster included) routes its deadlines
/// through these helpers so the entropy lint keeps real time fenced
/// into this file.
int64_t MonotonicMillis();

/// Sleeps the calling thread for `ms` milliseconds (connect backoff).
void SleepMillis(int ms);

/// Creates a nonblocking listening TCP socket bound to 127.0.0.1 on an
/// ephemeral port and returns its fd; `*port` receives the bound port.
/// The cluster runner calls this for every child BEFORE forking, so a
/// child inherits its own listener (no port handshake, no bind race)
/// and every process knows the full port table as plain data.
Result<int> CreateLoopbackListener(uint16_t* port);

/// First bytes a connector writes on every directed channel: this magic
/// followed by its own PeerId (both little-endian uint32). Exposed so
/// adversarial tests can speak the preamble against a raw socket.
inline constexpr uint32_t kSocketPreambleMagic = 0xD37AC0DEu;

/// Timing knobs of the connect/accept state machine. Defaults suit
/// loopback: connects to a pre-created listener land in the backlog
/// immediately; the bounded retry+backoff only spins when a peer's
/// listener genuinely is not there (refused) or transiently out of
/// backlog.
struct SocketOptions {
  /// Userspace bytes of tx ring per outbound channel and rx ring per
  /// inbound channel (clamped to at least one max-size frame).
  size_t ring_bytes = 1 << 16;
  /// Connect attempts before giving up with the underlying error.
  int connect_attempts = 50;
  /// Backoff before the first retry; doubles per attempt up to the cap.
  int backoff_initial_ms = 2;
  int backoff_max_ms = 100;
  /// When > 0, sets SO_SNDBUF on outbound sockets (the kernel clamps to
  /// its floor). Backpressure tests use the floor so a non-draining
  /// peer fills the pipe in kilobytes, not megabytes; 0 keeps the OS
  /// default.
  int sndbuf_bytes = 0;
  /// Outbound-channel reconnects after a mid-stream failure (reset /
  /// broken pipe): 0 (the default) keeps failures sticky and terminal —
  /// the PR 8 behavior every error-taxonomy pin relies on; > 0 lets a
  /// Send that hits a dead socket redial the remembered port with the
  /// same retry+backoff as ConnectPeer, up to this many times per
  /// channel. Bytes in flight on the dead socket are lost and the new
  /// stream may start mid-frame (the receiver resyncs); recovering the
  /// CONTENT is the session layer's job (resubscribe).
  int reconnect_attempts = 0;
};

/// Loopback-TCP implementation of the Transport boundary: one process's
/// endpoint in a multi-process cluster. Nothing above the interface
/// changes — the same fixed-size rings as the in-process transports now
/// buffer a real socket (tx: bytes the kernel would not take yet; rx:
/// bytes received but not yet deframed), backpressure is still a
/// counted CapacityExhausted stall when a tx ring fills, and deframing
/// is the shared FrameReassembler — header-driven boundaries, byte-wise
/// resync — reading exactly the byte stream StreamTransport models.
///
/// Topology: directed channels, as in StreamTransport. For a channel
/// A -> B, A calls ConnectPeer(B) against B's listener and opens with
/// an 8-byte preamble identifying A; B's Poll accepts the connection,
/// reads the preamble and registers the inbound channel. Send requires
/// `from` == the endpoint's own id (a socket transport is one process's
/// view of the cluster, unlike the in-process buses that carry all
/// peers).
///
/// Error taxonomy (all IoError, distinguished by message): "connection
/// refused" after the retry budget, "connection reset by peer" /
/// "broken pipe" when a peer dies mid-stream, "timed out" from
/// WaitIo's deadline, "half-closed mid-frame" when a peer's FIN lands
/// inside an unfinished frame. Channel failures are sticky: the first
/// error is returned by every later Send to (and recorded against) that
/// peer, and channel_status() surfaces the first failure on any
/// channel. Send/Poll stay allocation-free: rings are sized at
/// registration, scratch lives on the stack.
///
/// Single-threaded by contract, like every Transport.
class SocketTransport final : public Transport {
 public:
  SocketTransport(size_t peer_count, PeerId self, SocketOptions options = {});
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// This endpoint's peer id.
  PeerId self() const { return self_; }

  /// Binds a fresh loopback listener (ephemeral port). Alternative to
  /// AdoptListener; FailedPrecondition if already listening.
  Status Listen();

  /// Adopts an fd from CreateLoopbackListener (the fork-inheritance
  /// path). Takes ownership; FailedPrecondition if already listening.
  Status AdoptListener(int listen_fd, uint16_t listen_port);

  /// Bound port; 0 before Listen/AdoptListener.
  uint16_t port() const { return port_; }

  /// Opens the directed channel self -> peer against `peer_port`:
  /// nonblocking connect with bounded retry+backoff (refused or
  /// transiently unreachable listeners are retried; the budget turns a
  /// dead peer into a precise IoError), then the identifying preamble.
  Status ConnectPeer(PeerId peer, uint16_t peer_port);

  /// Half-closes the outbound channel to `peer` after flushing what the
  /// kernel will take: the peer's reader sees EOF once the bytes drain.
  Status CloseSend(PeerId peer);

  /// Drives the endpoint without consuming a frame: accepts pending
  /// connections, flushes tx rings, fills rx rings. Returns the first
  /// sticky channel error (a caller pumping a one-way feed would
  /// otherwise never learn its peer died).
  Status Pump();

  /// Blocks (poll(2)) until some socket is ready — readable data or
  /// writable room for a nonempty tx ring — or `timeout_ms` elapses,
  /// which is IoError "timed out". Callers loop WaitIo/Pump/Poll
  /// instead of spinning.
  Status WaitIo(int timeout_ms);

  /// First sticky failure on any channel (Ok while all channels are
  /// healthy). EOF from a peer that finished cleanly is not a failure.
  const Status& channel_status() const { return channel_status_; }

  /// Bytes buffered in tx rings, not yet accepted by the kernel. Zero
  /// means every sent frame has left the process.
  size_t pending_tx_bytes() const;

  /// True when nothing more can arrive without a NEW connection: no
  /// accepted-but-unidentified connection is pending a preamble and
  /// every inbound channel's socket has closed (EOF, failure, or never
  /// connected). Meaningful after a Pump/Poll has run the acceptor; a
  /// collector uses it to distinguish "peers all finished" from "quiet
  /// right now".
  bool drained() const;

  // Transport interface.
  size_t peer_count() const override { return out_.size(); }
  Status Send(PeerId from, PeerId to, const wire::Frame& frame) override;
  bool Poll(PeerId self, wire::Frame* out, PeerId* from) override;
  const TransportMetrics& metrics() const override { return totals_; }
  const TransportMetrics& peer_metrics(PeerId peer) const override {
    return per_peer_[peer];
  }
  void set_recorder(obs::Recorder* recorder) override {
    recorder_ = recorder;
  }

 private:
  struct OutChannel {
    int fd = -1;
    ByteRing tx;
    Status error;  // sticky; Ok while healthy
    /// Port the channel dialed, remembered for reconnects.
    uint16_t port = 0;
    /// Remaining reconnect budget (SocketOptions::reconnect_attempts).
    int reconnects_left = 0;
    bool open() const { return fd >= 0; }
  };
  struct InChannel {
    int fd = -1;
    ByteRing rx;
    bool eof = false;
    bool failed = false;  // half-closed mid-frame or reset; drained once
    bool open() const { return fd >= 0; }
  };
  /// An accepted connection whose identifying preamble has not fully
  /// arrived yet (a connector may be preempted mid-write).
  struct PendingAccept {
    int fd = -1;
    uint8_t preamble[8] = {};
    size_t have = 0;
    int64_t deadline_ms = 0;
  };

  void AcceptPending();
  /// Dials `peer_port`, writes the identifying preamble, and returns the
  /// connected nonblocking fd — the bounded retry+backoff loop shared by
  /// ConnectPeer and FlushOut's reconnect path.
  Result<int> Dial(PeerId peer, uint16_t peer_port);
  Status FlushOut(PeerId to);
  void FillIn(PeerId peer);
  void StickChannelError(const Status& error);

  PeerId self_;
  SocketOptions options_;
  size_t ring_bytes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<OutChannel> out_;   // indexed by destination peer
  std::vector<InChannel> in_;     // indexed by source peer
  std::vector<PendingAccept> pending_;
  Status channel_status_;
  std::vector<TransportMetrics> per_peer_;
  TransportMetrics totals_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace d3t::net

#endif  // D3T_NET_SOCKET_TRANSPORT_H_
