#ifndef D3T_NET_TRANSPORT_H_
#define D3T_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "net/frame_reassembler.h"
#include "net/wire.h"
#include "obs/recorder.h"
#include "obs/registry.h"

namespace d3t::net {

/// Peer address on a transport: dense indices [0, peer_count). Engine
/// wire mode maps them 1:1 onto OverlayIndex (also uint32_t, source =
/// 0); serving worlds add extra peers (e.g. the feed publisher) past
/// the overlay range.
using PeerId = uint32_t;
inline constexpr PeerId kInvalidPeerId = UINT32_MAX;

/// Transport counters. Backpressure and corruption are recorded here
/// instead of being turned into allocations or exceptions — the Mu2e
/// DMA idiom: a full ring is a counted stall the caller retries, not a
/// growing queue.
struct TransportMetrics {
  uint64_t frames_tx = 0;
  uint64_t frames_rx = 0;
  uint64_t bytes_tx = 0;
  uint64_t bytes_rx = 0;
  /// Sends refused because the destination ring was full.
  uint64_t backpressure_stalls = 0;
  /// Received bytes that failed wire::Decode (or header resync steps).
  uint64_t decode_errors = 0;
  /// Scripted faults executed by a FaultInjectingTransport wrapper
  /// (0 on plain transports).
  uint64_t faults_injected = 0;
  /// Frames discarded before reaching the peer (injected drops, resets
  /// and wedge windows; 0 on plain transports).
  uint64_t frames_dropped = 0;
  /// Connections re-established after a reset (SocketTransport with
  /// reconnect_attempts > 0, or injected kResetConn faults).
  uint64_t reconnects = 0;
};

/// Boundary between the engines and the medium their frames cross.
/// All buffers are pre-registered at construction (fixed-size rings,
/// bounded per-peer queues); Send/Poll never allocate. Attribution:
/// tx bytes/frames and stalls are charged to the sender, rx bytes/
/// frames and decode errors to the receiver.
///
/// Implementations are single-threaded by contract — one engine loop
/// owns a transport, the way it owns its EventQueue.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of addressable peers.
  virtual size_t peer_count() const = 0;

  /// Serializes `frame` toward `to`. CapacityExhausted when the
  /// destination's ring is full (a counted stall — drain and retry);
  /// InvalidArgument for out-of-range peers or unencodable frames.
  virtual Status Send(PeerId from, PeerId to, const wire::Frame& frame) = 0;

  /// Delivers the next frame addressed to `self`, FIFO per source.
  /// Returns false when nothing is pending. `from` (when non-null)
  /// receives the sender. Corrupt queued bytes are counted and
  /// skipped, never returned.
  virtual bool Poll(PeerId self, wire::Frame* out, PeerId* from) = 0;

  /// Aggregate counters across all peers.
  virtual const TransportMetrics& metrics() const = 0;

  /// Counters attributed to one peer (tx/stalls as sender, rx/decode
  /// errors as receiver).
  virtual const TransportMetrics& peer_metrics(PeerId peer) const = 0;

  /// Attaches a flight recorder: frame tx/rx and decode errors are
  /// recorded at the recorder's current *logical* clock (the driving
  /// engine owns set_now(); the transport never consults a wall clock).
  /// Null detaches. The default implementation ignores the recorder —
  /// recording stays opt-in per transport.
  virtual void set_recorder(obs::Recorder* recorder) { (void)recorder; }
};

/// Publishes a TransportMetrics struct into the registry as counters
/// named "<prefix>.frames_tx", "<prefix>.bytes_rx", ... — the one
/// metrics bridge every transport (and wrapper) shares, replacing the
/// hand-rolled per-field report paths. Cold: call once per run end.
void PublishTransportMetrics(obs::Registry& registry, const char* prefix,
                             const TransportMetrics& metrics);

/// Deterministic in-process bus: one fixed-capacity ring of encoded
/// frame slots per destination. Every frame genuinely round-trips the
/// wire format — Send encodes into the slot, Poll decodes out of it —
/// so a simulator run routed through this transport exercises the
/// exact serialization a socket transport would, with delivery order
/// (FIFO per destination, across senders) fully deterministic. This is
/// the transport the byte-identity pin runs over.
class InProcTransport : public Transport {
 public:
  /// `per_peer_capacity` frames of ring per destination, pre-allocated
  /// here — the hot Send/Poll paths never touch the allocator.
  InProcTransport(size_t peer_count, size_t per_peer_capacity);

  size_t peer_count() const override { return rings_.size(); }
  Status Send(PeerId from, PeerId to, const wire::Frame& frame) override;
  bool Poll(PeerId self, wire::Frame* out, PeerId* from) override;
  const TransportMetrics& metrics() const override { return totals_; }
  const TransportMetrics& peer_metrics(PeerId peer) const override {
    return per_peer_[peer];
  }
  void set_recorder(obs::Recorder* recorder) override {
    recorder_ = recorder;
  }

 private:
  struct Slot {
    PeerId from = kInvalidPeerId;
    uint32_t size = 0;
    uint8_t bytes[wire::kMaxFrameSize] = {};
  };
  struct Ring {
    size_t head = 0;
    size_t count = 0;
  };

  size_t capacity_;
  /// Slot storage, rings_[to] laid out contiguously: slot i of ring r
  /// lives at slots_[r * capacity_ + i].
  std::vector<Slot> slots_;
  std::vector<Ring> rings_;
  std::vector<TransportMetrics> per_peer_;
  TransportMetrics totals_;
  obs::Recorder* recorder_ = nullptr;
};

/// Loopback byte-stream transport: frames cross directed byte rings
/// with no slot structure — the receiver recovers frame boundaries
/// from the wire header alone via the shared FrameReassembler, exactly
/// as a TCP reader would. Channels are pre-registered via Connect
/// (from → to) so the sender of every byte is known without in-band
/// addressing; Poll scans a peer's inbound channels in ascending
/// sender order and resyncs byte-by-byte past corrupt headers.
class StreamTransport : public Transport {
 public:
  /// `per_channel_bytes` of ring per registered channel.
  StreamTransport(size_t peer_count, size_t per_channel_bytes);

  /// Registers the directed channel `from` → `to`, allocating its byte
  /// ring. Sending on an unregistered channel is FailedPrecondition.
  Status Connect(PeerId from, PeerId to);

  size_t peer_count() const override { return inbound_.size(); }
  Status Send(PeerId from, PeerId to, const wire::Frame& frame) override;
  bool Poll(PeerId self, wire::Frame* out, PeerId* from) override;
  const TransportMetrics& metrics() const override { return totals_; }
  const TransportMetrics& peer_metrics(PeerId peer) const override {
    return per_peer_[peer];
  }
  void set_recorder(obs::Recorder* recorder) override {
    recorder_ = recorder;
  }

  /// Appends raw bytes to the `from` → `to` channel without encoding —
  /// the adversarial seam: tests inject truncated or corrupt byte
  /// sequences and watch Poll resync past them.
  Status SendRaw(PeerId from, PeerId to, const uint8_t* data, size_t size);

 private:
  struct Channel {
    PeerId from = kInvalidPeerId;
    ByteRing ring;
  };

  Channel* FindChannel(PeerId from, PeerId to);
  Status Append(Channel& ch, PeerId from, const uint8_t* data, size_t size);

  size_t channel_bytes_;
  /// inbound_[to] = channels addressed to `to`, ascending by sender.
  std::vector<std::vector<Channel>> inbound_;
  std::vector<TransportMetrics> per_peer_;
  TransportMetrics totals_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace d3t::net

#endif  // D3T_NET_TRANSPORT_H_
