#include "net/frame_reassembler.h"

#include <algorithm>
#include <cstring>

namespace d3t::net {

// d3t-lint: hot
bool ByteRing::Append(const uint8_t* data, size_t size) {
  if (size == 0) return true;  // also keeps a capacity-0 ring well-defined
  if (free_space() < size) return false;
  const size_t tail = (head_ + count_) % bytes_.size();
  const size_t first = std::min(size, bytes_.size() - tail);
  std::memcpy(bytes_.data() + tail, data, first);
  std::memcpy(bytes_.data(), data + first, size - first);
  count_ += size;
  return true;
}

// d3t-lint: hot
size_t ByteRing::PeekLinear(uint8_t* out, size_t max) const {
  const size_t avail = std::min(count_, max);
  const size_t first = std::min(avail, bytes_.size() - head_);
  std::memcpy(out, bytes_.data() + head_, first);
  std::memcpy(out + first, bytes_.data(), avail - first);
  return avail;
}

size_t ByteRing::ContiguousFront(const uint8_t** data) const {
  *data = bytes_.data() + head_;
  return std::min(count_, bytes_.size() - head_);
}

size_t ByteRing::ContiguousBack(uint8_t** data) {
  const size_t tail = (head_ + count_) % bytes_.size();
  *data = bytes_.data() + tail;
  return std::min(free_space(), bytes_.size() - tail);
}

void ByteRing::Grow(size_t n) { count_ += n; }

void ByteRing::Consume(size_t n) {
  head_ = (head_ + n) % bytes_.size();
  count_ -= n;
}

// d3t-lint: hot
FrameReassembler::Outcome FrameReassembler::Next(ByteRing& ring,
                                                 wire::Frame* out,
                                                 size_t* frame_bytes) {
  if (ring.size() < wire::kHeaderSize) return Outcome::kNeedMore;

  // Linearize up to one frame's worth of the ring into scratch so the
  // decoder sees contiguous bytes even across the wrap.
  uint8_t scratch[wire::kMaxFrameSize];
  const size_t avail = ring.PeekLinear(scratch, sizeof(scratch));

  Result<size_t> size = wire::PeekFrameSize(scratch, avail);
  if (!size.ok()) {
    // Garbage header: slide one byte and let the caller retry on the
    // next magic. A TCP reader recovering from a corrupt stream does
    // exactly this.
    ring.Consume(1);
    return Outcome::kResync;
  }
  if (ring.size() < *size) return Outcome::kNeedMore;  // partial frame

  Result<wire::Frame> decoded = wire::Decode(scratch, avail);
  if (!decoded.ok()) {
    // Valid header, corrupt payload (checksum): resync as above.
    ring.Consume(1);
    return Outcome::kResync;
  }
  ring.Consume(*size);
  *out = *decoded;
  if (frame_bytes != nullptr) *frame_bytes = *size;
  return Outcome::kFrame;
}

}  // namespace d3t::net
