#include "net/routing.h"

#include <queue>

namespace d3t::net {

namespace {
constexpr sim::SimTime kInf = sim::kSimTimeMax / 4;
}  // namespace

RoutingTables::RoutingTables(size_t node_count)
    : delay_(node_count * node_count, kInf),
      hops_(node_count * node_count, UINT32_MAX),
      row_valid_(node_count, false) {}

Result<RoutingTables> RoutingTables::FloydWarshall(const Topology& topo) {
  const size_t n = topo.node_count();
  RoutingTables t(n);
  for (NodeId i = 0; i < n; ++i) {
    t.delay_[t.Index(i, i)] = 0;
    t.hops_[t.Index(i, i)] = 0;
  }
  for (const Link& link : topo.links()) {
    // Parallel links: keep the cheapest.
    if (link.delay < t.delay_[t.Index(link.a, link.b)]) {
      t.delay_[t.Index(link.a, link.b)] = link.delay;
      t.delay_[t.Index(link.b, link.a)] = link.delay;
      t.hops_[t.Index(link.a, link.b)] = 1;
      t.hops_[t.Index(link.b, link.a)] = 1;
    }
  }
  // Classic triple loop (Floyd & Warshall, as cited by the paper [7]).
  for (NodeId k = 0; k < n; ++k) {
    const sim::SimTime* dk = &t.delay_[t.Index(k, 0)];
    for (NodeId i = 0; i < n; ++i) {
      const sim::SimTime dik = t.delay_[t.Index(i, k)];
      if (dik >= kInf) continue;
      sim::SimTime* di = &t.delay_[t.Index(i, 0)];
      uint32_t* hi = &t.hops_[t.Index(i, 0)];
      const uint32_t hik = t.hops_[t.Index(i, k)];
      const uint32_t* hk = &t.hops_[t.Index(k, 0)];
      for (NodeId j = 0; j < n; ++j) {
        const sim::SimTime candidate = dik + dk[j];
        if (candidate < di[j]) {
          di[j] = candidate;
          hi[j] = hik + hk[j];
        }
      }
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    t.row_valid_[i] = true;
    for (NodeId j = 0; j < n; ++j) {
      if (t.delay_[t.Index(i, j)] >= kInf) {
        return Status::FailedPrecondition("topology is disconnected");
      }
    }
  }
  return t;
}

void RoutingTables::RunDijkstraFrom(const Topology& topo, NodeId src) {
  using Item = std::pair<sim::SimTime, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  sim::SimTime* dist = &delay_[Index(src, 0)];
  uint32_t* hops = &hops_[Index(src, 0)];
  dist[src] = 0;
  hops[src] = 0;
  pq.emplace(0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : topo.neighbors(u)) {
      const sim::SimTime nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        hops[v] = hops[u] + 1;
        pq.emplace(nd, v);
      }
    }
  }
  row_valid_[src] = true;
}

Result<RoutingTables> RoutingTables::DijkstraRows(
    const Topology& topo, const std::vector<NodeId>& rows) {
  RoutingTables t(topo.node_count());
  for (NodeId src : rows) {
    if (src >= topo.node_count()) {
      return Status::OutOfRange("dijkstra row out of range");
    }
    t.RunDijkstraFrom(topo, src);
    for (NodeId j = 0; j < topo.node_count(); ++j) {
      if (t.delay_[t.Index(src, j)] >= kInf) {
        return Status::FailedPrecondition("topology is disconnected");
      }
    }
  }
  return t;
}

}  // namespace d3t::net
