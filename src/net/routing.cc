#include "net/routing.h"

#include <queue>

namespace d3t::net {

RoutingTables::RoutingTables(size_t node_count) : rows_(node_count) {}

RoutingTables::Row& RoutingTables::EnsureRow(NodeId from) {
  Row& row = rows_[from];
  if (row.delay.empty()) {
    row.delay.assign(rows_.size(), kUnreachableDelay);
    row.hops.assign(rows_.size(), kUnreachableHops);
  }
  return row;
}

Result<sim::SimTime> RoutingTables::CheckedDelay(NodeId from,
                                                 NodeId to) const {
  if (from >= rows_.size() || to >= rows_.size()) {
    return Status::OutOfRange("routing query endpoint out of range");
  }
  if (rows_[from].delay.empty()) {
    return Status::FailedPrecondition("routing row was never computed");
  }
  return rows_[from].delay[to];
}

Result<uint32_t> RoutingTables::CheckedHops(NodeId from, NodeId to) const {
  if (from >= rows_.size() || to >= rows_.size()) {
    return Status::OutOfRange("routing query endpoint out of range");
  }
  if (rows_[from].hops.empty()) {
    return Status::FailedPrecondition("routing row was never computed");
  }
  return rows_[from].hops[to];
}

Result<RoutingTables> RoutingTables::FloydWarshall(const Topology& topo) {
  const size_t n = topo.node_count();
  RoutingTables t(n);
  for (NodeId i = 0; i < n; ++i) {
    Row& row = t.EnsureRow(i);
    row.delay[i] = 0;
    row.hops[i] = 0;
  }
  for (const Link& link : topo.links()) {
    // Parallel links: keep the cheapest.
    if (link.delay < t.rows_[link.a].delay[link.b]) {
      t.rows_[link.a].delay[link.b] = link.delay;
      t.rows_[link.b].delay[link.a] = link.delay;
      t.rows_[link.a].hops[link.b] = 1;
      t.rows_[link.b].hops[link.a] = 1;
    }
  }
  // Classic triple loop (Floyd & Warshall, as cited by the paper [7]).
  for (NodeId k = 0; k < n; ++k) {
    const sim::SimTime* dk = t.rows_[k].delay.data();
    const uint32_t* hk = t.rows_[k].hops.data();
    for (NodeId i = 0; i < n; ++i) {
      const sim::SimTime dik = t.rows_[i].delay[k];
      if (dik >= kUnreachableDelay) continue;
      sim::SimTime* di = t.rows_[i].delay.data();
      uint32_t* hi = t.rows_[i].hops.data();
      const uint32_t hik = hi[k];
      for (NodeId j = 0; j < n; ++j) {
        const sim::SimTime candidate = dik + dk[j];
        if (candidate < di[j]) {
          di[j] = candidate;
          hi[j] = hik + hk[j];
        }
      }
    }
  }
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (t.rows_[i].delay[j] >= kUnreachableDelay) {
        return Status::FailedPrecondition("topology is disconnected");
      }
    }
  }
  return t;
}

void RoutingTables::ShortestPathsFrom(const Topology& topo, NodeId src,
                                      std::vector<sim::SimTime>& delay,
                                      std::vector<uint32_t>& hops) {
  assert(src < topo.node_count());
  delay.assign(topo.node_count(), kUnreachableDelay);
  hops.assign(topo.node_count(), kUnreachableHops);
  using Item = std::pair<sim::SimTime, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  delay[src] = 0;
  hops[src] = 0;
  pq.emplace(0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > delay[u]) continue;
    for (const auto& [v, w] : topo.neighbors(u)) {
      const sim::SimTime nd = d + w;
      if (nd < delay[v]) {
        delay[v] = nd;
        hops[v] = hops[u] + 1;
        pq.emplace(nd, v);
      }
    }
  }
}

Result<RoutingTables> RoutingTables::DijkstraRows(
    const Topology& topo, const std::vector<NodeId>& rows) {
  RoutingTables t(topo.node_count());
  for (NodeId src : rows) {
    if (src >= topo.node_count()) {
      return Status::OutOfRange("dijkstra row out of range");
    }
    if (t.HasRow(src)) continue;  // duplicate request
    Row& row = t.rows_[src];
    ShortestPathsFrom(topo, src, row.delay, row.hops);
    for (NodeId j = 0; j < topo.node_count(); ++j) {
      if (row.delay[j] >= kUnreachableDelay) {
        return Status::FailedPrecondition("topology is disconnected");
      }
    }
  }
  return t;
}

}  // namespace d3t::net
