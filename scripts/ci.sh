#!/usr/bin/env bash
# Tier-1 verification: the exact configure/build/test sequence CI runs.
# Benchmarks are auto-detected (D3T_BUILD_BENCH=AUTO); a missing
# google-benchmark never fails this script.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j
