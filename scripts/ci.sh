#!/usr/bin/env bash
# Tier-1 verification: the exact configure/build/test sequence CI runs.
# Benchmarks are auto-detected (D3T_BUILD_BENCH=AUTO); a missing
# google-benchmark never fails this script.
#
# Sanitizer runs: set D3T_SANITIZE=thread (or address/undefined) to
# build into build-<sanitizer>/ with -fsanitize instrumentation — the
# thread variant race-checks the RunAll/RunMultiSource worker-pool path.
# D3T_TEST_FILTER optionally narrows ctest (regex) for slow sanitizer
# builds.
#
# Bench smoke: set D3T_BENCH_SMOKE=1 to instead build bench/ in Release
# mode (D3T_BUILD_BENCH=ON — here a missing google-benchmark *fails*,
# that is the point) and run every bench binary briefly: the
# google-benchmark drivers with --benchmark_min_time=1x, the paper-
# figure CLI drivers at a tiny scale. Keeps the perf binaries from
# bitrotting without turning CI into a benchmarking farm. Each
# google-benchmark driver also emits machine-readable results to
# bench-results/BENCH_<name>.json (--benchmark_format console output
# stays on the log); CI uploads the directory as an artifact, so every
# commit contributes a point to the perf trajectory.
#
# Lint: set D3T_LINT=1 to instead run the d3t-lint static-analysis
# suite (tools/lint/d3t_lint.py) — fixture selftest first, then a
# clean pass over src/. No toolchain needed beyond python3.
#
# Distributed smoke: set D3T_DISTRIBUTED_SMOKE=1 to instead build the
# examples and run examples/distributed_world — four real processes
# over loopback TCP; it exits 0 iff every node's EngineMetrics match
# the direct in-process runs byte for byte, so one run asserts the
# whole socket/cluster path end to end.
#
# Chaos smoke: set D3T_CHAOS_SMOKE=1 to instead run the same example
# with --chaos: scripted feed faults (drops, a reorder, a corrupted
# byte) plus one supervised SIGKILL/restart of a node. Exit 0 requires
# the faults to have fired, the crash to have been restarted, AND the
# metrics to still match the fault-free direct runs byte for byte.
#
# Both smokes pass --trace-out so the merged flight-recorder dump
# (obs/ trace events shipped back over kObsSnapshot frames) lands in
# trace-results/ for CI to upload — every smoke run leaves an
# inspectable Chrome-trace artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ -n "${D3T_LINT:-}" ]]; then
  echo "== d3t-lint: fixture selftest =="
  python3 tools/lint/d3t_lint.py --selftest
  echo "== d3t-lint: src/ =="
  python3 tools/lint/d3t_lint.py src/
  exit 0
fi

if [[ -n "${D3T_BENCH_SMOKE:-}" ]]; then
  BUILD_DIR=build-bench-smoke
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DD3T_BUILD_BENCH=ON \
    -DD3T_BUILD_TESTS=OFF \
    -DD3T_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j
  # One measured iteration per google-benchmark binary. The `1x`
  # iteration syntax needs google-benchmark >= 1.8; probe flag support
  # via --benchmark_list_tests (parses flags, runs nothing) so the
  # fallback is chosen by library version, never by a crashing benchmark.
  MIN_TIME_FLAG="--benchmark_min_time=1x"
  if ! "$BUILD_DIR/bench/event_kernel" "$MIN_TIME_FLAG" \
      --benchmark_list_tests=true > /dev/null 2>&1; then
    MIN_TIME_FLAG="--benchmark_min_time=0.01"
  fi
  RESULTS_DIR=bench-results
  mkdir -p "$RESULTS_DIR"
  for gbench in event_kernel micro_core session_sweep wire; do
    echo "== bench smoke: ${gbench} =="
    "$BUILD_DIR/bench/$gbench" "$MIN_TIME_FLAG" \
      --benchmark_out_format=json \
      --benchmark_out="$RESULTS_DIR/BENCH_${gbench}.json"
  done
  # Paper-figure CLI drivers at a tiny scale (they all take the common
  # flags); scalability also exercises the streaming routing path and
  # prints peak RSS.
  for cli_bench in "$BUILD_DIR"/bench/*; do
    name=$(basename "$cli_bench")
    case "$name" in
      event_kernel|micro_core|session_sweep|wire) continue ;;
    esac
    echo "== bench smoke: ${name} =="
    "$cli_bench" --repositories 8 --items 4 --ticks 120
  done
  # Churn smoke: the scalability point again with a generated
  # failure-churn scenario attached, so the dynamics path (detach,
  # repair, recovery) cannot bitrot either.
  echo "== bench smoke: scalability --churn =="
  "$BUILD_DIR/bench/scalability" --repositories 8 --items 4 --ticks 120 \
    --churn
  exit 0
fi

if [[ -n "${D3T_DISTRIBUTED_SMOKE:-}" || -n "${D3T_CHAOS_SMOKE:-}" ]]; then
  BUILD_DIR=build-distributed-smoke
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DD3T_BUILD_TESTS=OFF \
    -DD3T_BUILD_BENCH=OFF \
    -DD3T_BUILD_EXAMPLES=ON
  cmake --build "$BUILD_DIR" -j
  TRACE_DIR=trace-results
  mkdir -p "$TRACE_DIR"
  if [[ -n "${D3T_CHAOS_SMOKE:-}" ]]; then
    echo "== chaos smoke: examples/distributed_world --chaos =="
    "$BUILD_DIR/examples/distributed_world" --chaos \
      --trace-out "$TRACE_DIR/TRACE_chaos_smoke.json"
  else
    echo "== distributed smoke: examples/distributed_world =="
    "$BUILD_DIR/examples/distributed_world" \
      --trace-out "$TRACE_DIR/TRACE_distributed_smoke.json"
  fi
  exit 0
fi

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${D3T_SANITIZE:-}" ]]; then
  BUILD_DIR="build-${D3T_SANITIZE}"
  # Sanitized bench binaries are pointless; keep the build lean.
  CMAKE_ARGS+=("-DD3T_SANITIZE=${D3T_SANITIZE}" "-DD3T_BUILD_BENCH=OFF")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j
if [[ -n "${D3T_TEST_FILTER:-}" ]]; then
  # -R must precede the bare -j, which would otherwise consume it.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$D3T_TEST_FILTER" -j
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j
fi
