#!/usr/bin/env bash
# Tier-1 verification: the exact configure/build/test sequence CI runs.
# Benchmarks are auto-detected (D3T_BUILD_BENCH=AUTO); a missing
# google-benchmark never fails this script.
#
# Sanitizer runs: set D3T_SANITIZE=thread (or address/undefined) to
# build into build-<sanitizer>/ with -fsanitize instrumentation — the
# thread variant race-checks the RunAll/RunMultiSource worker-pool path.
# D3T_TEST_FILTER optionally narrows ctest (regex) for slow sanitizer
# builds.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ -n "${D3T_SANITIZE:-}" ]]; then
  BUILD_DIR="build-${D3T_SANITIZE}"
  # Sanitized bench binaries are pointless; keep the build lean.
  CMAKE_ARGS+=("-DD3T_SANITIZE=${D3T_SANITIZE}" "-DD3T_BUILD_BENCH=OFF")
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j
if [[ -n "${D3T_TEST_FILTER:-}" ]]; then
  # -R must precede the bare -j, which would otherwise consume it.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$D3T_TEST_FILTER" -j
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j
fi
